//! Closed-loop load generator and chaos harness for the live runtime.
//!
//! ```text
//! serve_bench [--smoke] [--chaos] [--tasks N] [--workers N] [--seed N] [--journal <path>]
//! ```
//!
//! Drives the `smartred-runtime` job-serving runtime with a 30%-faulty
//! worker pool under traditional, progressive, and iterative redundancy at
//! *matched predicted reliability*, keeping a fixed window of tasks in
//! flight (closed loop). For each strategy it reports throughput, p50/p99
//! first-dispatch→verdict latency, jobs per task, achieved reliability,
//! and the shed rate — the live analogue of the paper's Figure 5 cost
//! comparison — then asserts the qualitative cost ordering
//! IR < PR < TR jobs/task and exits non-zero if it fails to hold.
//!
//! `--chaos` runs the crash-recovery harness instead: a golden
//! uninterrupted run (with crash-injecting workers) fixes the expected
//! outcome, then the same workload is re-run with a durable WAL and the
//! coordinator killed at seeded points; each crashed run is restarted with
//! `Runtime::recover` and must converge to a final journal whose verdicts,
//! per-task job counts, and totals equal the golden run's — and whose
//! folded report equals the live one — exiting non-zero otherwise.
//!
//! `--smoke` shrinks the run to a few hundred tasks so the whole binary
//! finishes within a CI smoke budget (~10 s). `--journal <path>` writes
//! the iterative run's event journal as JSONL (for artifact upload); every
//! run is additionally replay-checked by folding its journal back into a
//! report and requiring exact equality with the live one. Under `--chaos`,
//! `--journal <path>` names where the WAL of a *failed* recovery round is
//! preserved for artifact upload.
//!
//! `--cartel N` arms an adaptive coalition of the first N workers
//! (coordinated per-task lies, honest otherwise). Under `--chaos` the
//! coalition runs against an audit-enabled coordinator, checking that the
//! new audit events survive crash + WAL recovery. `--audit-demo` runs the
//! matched-cost acceptance comparison: against the cartel, an
//! audit-enabled strategy must beat the best audit-free strategy on
//! measured reliability at no greater total cost (replicas + audits).
//! `--bench-json <path>` sweeps audit fractions {0, 0.05, 0.2} and writes
//! the machine-readable throughput baseline (`BENCH_6.json`).
//!
//! `--shards N` runs the whole serving comparison on the sharded
//! multi-coordinator runtime (`ShardedRuntime`): tasks hash to one of N
//! coordinators with disjoint WAL segments and worker sub-pools behind a
//! router that owns admission. Combined with `--bench-json <path>` it
//! instead sweeps shard counts {1, 2, 4, …, N} under a durable
//! per-event-fsync WAL and writes the throughput-vs-shards baseline
//! (`BENCH_7.json`);
//! the sweep is coordination-bound (zero-work payloads) so it measures
//! exactly what sharding scales — the coordinator/WAL plane, at matched
//! verdict reliability across shard counts.
//!
//! `--hedge` arms straggler-aware hedging (quantile-triggered duplicate
//! replicas; the first pair member to answer supplies the vote) and
//! `--assignment <random|round-robin|least-loaded>` picks the replica
//! placement policy. Combined with `--bench-json <path>` it runs TR/PR/IR
//! hedged and unhedged on a straggler-prone pool and writes the
//! latency-vs-cost frontier (`BENCH_8.json`), exiting non-zero unless
//! hedging cuts TR's p99 latency at bit-identical verdicts. Combined with
//! `--chaos` it runs the crash-recovery harness with hedge pairs live at
//! every crash point.
//!
//! `--dag` runs the network-aware DAG pipeline comparison instead
//! (`smartred-dag`): a map→shuffle→reduce pipeline over a transfer-charged
//! simulated pool, attacked by a seeded adversary that targets the wide
//! map cut. A per-stage strategy *mix* (strong iterative redundancy on the
//! attacked stage, cheap strategies elsewhere) runs against uniform TR,
//! PR, and IR calibrated to spend at least the mix's measured job budget,
//! and `BENCH_9.json` records poison-escape rate, total cost, and
//! makespan (simulated units only — the file is bit-identical across
//! `SMARTRED_THREADS` settings). Exits non-zero unless the mix beats
//! every budget-matched uniform on escape rate and each policy's journal
//! replays to its live report exactly.
//!
//! `--disk-chaos` runs the durable-storage chaos harness: the same
//! workload re-runs with fault-injecting disks mounted under the
//! coordinator's WAL (failed fsync, short write, power-loss torn write).
//! Each detectable fault must crash the coordinator — fail-stop, never
//! limping on over a disk it cannot trust — and `Runtime::recover` on a
//! healthy disk must converge to the golden journal shape. The final leg
//! arms checksummed framing against silent in-place bit rot and requires
//! recovery to refuse and quarantine the rotten segment rather than
//! replay a corrupt record. Combined with `--bench-json <path>` it
//! instead measures the three durable-storage costs and writes
//! `BENCH_10.json`: WAL append throughput across sync x batch settings,
//! replay rate with and without checksums, and recovery time vs uptime —
//! full-WAL replay grows linearly while checkpointed recovery replays
//! only the suffix past the last seal, and the binary exits non-zero
//! unless the checkpointed leg replays well under half the events of the
//! full-replay leg at the longest uptime.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use smartred_core::analysis;
use smartred_core::audit::{AuditPolicy, Cartel};
use smartred_core::execution::Assignment;
use smartred_core::hedge::HedgePolicy;
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::resilience::QuarantinePolicy;
use smartred_core::strategy::{Iterative, Progressive, RedundancyStrategy, Traditional};
use smartred_desim::disk::DiskFaultPlan;
use smartred_desim::journal::{Journal, RunEvent, WalWriter};
use smartred_desim::time::SimTime;
use smartred_runtime::{
    report_from_journal, CartelWorker, Client, FaultProfile, FaultyWorker, JobAssignment, Payload,
    RecoveryError, Runtime, RuntimeConfig, RuntimeRun, ShardedClient, ShardedConfig,
    ShardedRuntime, SubmitOutcome, TaskVerdict, Worker,
};
use smartred_sat::{decompose, random_3sat, CnfFormula, ThreeSatConfig};

/// Worker honesty for the whole benchmark: r = 0.7 (30% colluding-wrong),
/// the paper's canonical hostile regime.
const WRONG_RATE: f64 = 0.3;
/// Iterative margin: d = 4 predicts R ≈ 0.967 at r = 0.7 (Eq. 6).
const MARGIN: usize = 4;

#[derive(Clone)]
struct Args {
    tasks: usize,
    workers: usize,
    seed: u64,
    shards: usize,
    journal: Option<String>,
    smoke: bool,
    chaos: bool,
    cartel: u32,
    audit_demo: bool,
    bench_json: Option<String>,
    hedge: bool,
    assignment: Assignment,
    dag: bool,
    disk_chaos: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        tasks: 1000,
        workers: 8,
        seed: 20110620,
        shards: 1,
        journal: None,
        smoke: false,
        chaos: false,
        cartel: 0,
        audit_demo: false,
        bench_json: None,
        hedge: false,
        assignment: Assignment::Random,
        dag: false,
        disk_chaos: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires an argument", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--smoke" => {
                args.tasks = 200;
                args.smoke = true;
            }
            "--chaos" => args.chaos = true,
            "--audit-demo" => args.audit_demo = true,
            "--tasks" => {
                args.tasks = value(i).parse().expect("--tasks N");
                i += 1;
            }
            "--workers" => {
                args.workers = value(i).parse().expect("--workers N");
                i += 1;
            }
            "--seed" => {
                args.seed = value(i).parse().expect("--seed N");
                i += 1;
            }
            "--shards" => {
                args.shards = value(i).parse().expect("--shards N");
                args.shards = args.shards.max(1);
                i += 1;
            }
            "--cartel" => {
                args.cartel = value(i).parse().expect("--cartel N");
                i += 1;
            }
            "--journal" => {
                args.journal = Some(value(i));
                i += 1;
            }
            "--bench-json" => {
                args.bench_json = Some(value(i));
                i += 1;
            }
            "--hedge" => args.hedge = true,
            "--dag" => args.dag = true,
            "--disk-chaos" => args.disk_chaos = true,
            "--assignment" => {
                let name = value(i);
                args.assignment = Assignment::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "--assignment {name}: unknown policy (random | round-robin | least-loaded)"
                    );
                    std::process::exit(2);
                });
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag '{other}'; usage: serve_bench [--smoke] [--chaos] \
                     [--audit-demo] [--dag] [--disk-chaos] [--tasks N] [--workers N] [--seed N] \
                     [--shards N] [--cartel N] [--hedge] [--assignment <policy>] \
                     [--journal <path>] [--bench-json <path>]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

struct Outcome {
    name: &'static str,
    run: RuntimeRun,
    elapsed: Duration,
    /// Sorted first-dispatch→verdict latencies, in journal units (seconds).
    latencies: Vec<f64>,
}

impl Outcome {
    fn throughput(&self) -> f64 {
        self.run.report.tasks_completed as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> f64 {
        smartred_stats::percentile_nearest_rank(&self.latencies, p)
    }
}

/// The `--hedge` trigger: once 10 latency samples are in, a job that
/// outlives 3× the online p90 estimate gets a twin on another worker, up
/// to four per task epoch (TR's wide waves can straggle several replicas
/// of one task at once). On the straggler pool the p90 sits in the fast
/// mode, so the threshold is a few fast service times — well under the
/// deadline.
fn hedge_policy() -> HedgePolicy {
    HedgePolicy {
        quantile: 0.9,
        min_samples: 10,
        multiplier: 3.0,
        max_per_task: 4,
    }
}

/// A worker whose *vote* is the pure `(seed, task, replica)` draw of the
/// wrapped [`FaultyWorker`] but whose *service time* additionally depends
/// on the worker index: a seeded 1% of `(worker, task, replica)` triples
/// take 100 ms, the rest 1 ms. Slowness is a property of the placement,
/// so a hedge twin redraws the delay on its new worker while voting
/// bit-identically to its origin — hedging changes latency, never votes.
/// The slow rate is deliberately low twice over: the online p90 must sit
/// in the fast mode or the trigger's threshold would chase the stragglers
/// instead of catching them, and a task whose twin is *itself* slow (the
/// one tail hedging cannot remove, since a paired origin is never
/// re-hedged) must stay rarer than 1% of tasks or it pins the p99.
struct StragglerWorker {
    index: u32,
    seed: u64,
    inner: FaultyWorker,
}

impl StragglerWorker {
    fn new(index: u32, seed: u64, profile: FaultProfile) -> Self {
        Self {
            index,
            seed,
            inner: FaultyWorker::new(seed, profile),
        }
    }

    fn delay(&self, task: u32, replica: u32) -> Duration {
        let mut x = self
            .seed
            .wrapping_add(u64::from(self.index) << 32)
            .wrapping_add(u64::from(task) << 16)
            .wrapping_add(u64::from(replica));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        if (x >> 11) as f64 / ((1u64 << 53) as f64) < 0.01 {
            Duration::from_millis(100)
        } else {
            Duration::from_millis(1)
        }
    }
}

impl Worker for StragglerWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        std::thread::sleep(self.delay(job.task, job.replica));
        self.inner.execute(job)
    }
}

/// Adversary-side configuration of one `drive` run. With `audit` enabled,
/// spot-checked verdicts are recomputed locally and liars disciplined; with
/// a `cartel`, the first members of the pool lie in concert (and are
/// otherwise honest — the coalition is the adversary). A `job_cap` bounds
/// each task's tally race: a coalition of exactly half the pool turns a
/// vote-margin race into a fair coin walk with unbounded expected length,
/// so capped tasks fail (deliver no answer) instead of livelocking the run.
#[derive(Clone, Copy)]
struct Regime {
    audit: AuditPolicy,
    cartel: Option<Cartel>,
    job_cap: Option<usize>,
    /// Run the pool as [`StragglerWorker`]s (the `--hedge` latency mix)
    /// instead of uniformly fast workers.
    straggle: bool,
}

impl Regime {
    /// Independent 30%-wrong workers, no auditing, no cap — the standard
    /// benchmark regime.
    fn honest() -> Self {
        Regime {
            audit: AuditPolicy::disabled(),
            cartel: None,
            job_cap: None,
            straggle: false,
        }
    }
}

/// Either serving runtime behind one submit/recv surface, so the whole
/// benchmark (and its closed loop) runs unchanged under `--shards N`.
enum AnyRuntime {
    One(Runtime),
    Sharded(ShardedRuntime),
}

enum AnyClient {
    One(Client),
    Sharded(ShardedClient),
}

impl AnyRuntime {
    fn client(&self) -> AnyClient {
        match self {
            AnyRuntime::One(r) => AnyClient::One(r.client()),
            AnyRuntime::Sharded(r) => AnyClient::Sharded(r.client()),
        }
    }

    fn finish(self) -> RuntimeRun {
        match self {
            AnyRuntime::One(r) => r.finish(),
            AnyRuntime::Sharded(r) => {
                let run = r.finish();
                RuntimeRun {
                    report: run.report,
                    admission: run.admission,
                    journal: run.journal,
                    crashed: run.crashed,
                }
            }
        }
    }
}

impl AnyClient {
    fn submit(&self, payload: Payload) -> SubmitOutcome {
        match self {
            AnyClient::One(c) => c.submit(payload),
            AnyClient::Sharded(c) => c.submit(payload),
        }
    }

    fn recv(&self) -> Option<TaskVerdict> {
        match self {
            AnyClient::One(c) => c.recv(),
            AnyClient::Sharded(c) => c.recv(),
        }
    }
}

/// Runs `tasks` 3-SAT block tasks through a fresh runtime under `strategy`,
/// keeping at most `window` in flight (closed loop, shed-retry on overload),
/// against the adversary described by `regime`. With `args.shards > 1` the
/// tasks serve on the sharded multi-coordinator runtime instead.
fn drive<S>(
    name: &'static str,
    strategy: S,
    formula: &Arc<CnfFormula>,
    args: &Args,
    window: usize,
    regime: Regime,
) -> Outcome
where
    S: RedundancyStrategy<bool> + Clone + Send + Sync + 'static,
{
    let Regime {
        audit,
        cartel,
        job_cap,
        straggle,
    } = regime;
    let blocks = decompose(formula.num_vars(), args.tasks);
    let cfg = RuntimeConfig {
        workers: Some(args.workers),
        queue_cap: window,
        max_active: window,
        deadline: Duration::from_secs(5),
        job_cap,
        discipline: audit.is_enabled().then(QuarantinePolicy::default),
        audit,
        audit_seed: args.seed,
        hedge: args.hedge.then(hedge_policy),
        assignment: args.assignment,
        ..RuntimeConfig::default()
    };
    let seed = args.seed;
    let profile = FaultProfile {
        wrong_rate: if cartel.is_some() { 0.0 } else { WRONG_RATE },
        hang_rate: 0.0,
        crash_rate: 0.0,
        think: Duration::ZERO,
    };
    let make_worker = move |index: u32| match cartel {
        Some(c) => Box::new(CartelWorker::new(index, seed, c, profile)) as Box<dyn Worker>,
        None if straggle => Box::new(StragglerWorker::new(index, seed, profile)),
        None => Box::new(FaultyWorker::new(seed, profile)),
    };
    let runtime = if args.shards > 1 {
        AnyRuntime::Sharded(ShardedRuntime::start(
            ShardedConfig {
                base: cfg,
                shards: args.shards,
                wal_dir: None,
                admission_cap: window,
                crash_after: None,
            },
            strategy,
            make_worker,
        ))
    } else {
        AnyRuntime::One(Runtime::start(cfg, strategy, make_worker))
    };
    let client = runtime.client();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(args.tasks);
    let mut in_flight = 0usize;
    for block in blocks {
        // Closed loop: a full window waits for a verdict before the next
        // submission, so offered load tracks service capacity.
        while in_flight >= window {
            let verdict = client.recv().expect("runtime dropped a verdict");
            latencies.push(verdict.latency_units);
            in_flight -= 1;
        }
        loop {
            let outcome = client.submit(Payload::Sat {
                formula: formula.clone(),
                block,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            // Shed under a race with the drain: back off and retry.
            std::thread::sleep(Duration::from_micros(200));
        }
        in_flight += 1;
    }
    while in_flight > 0 {
        let verdict = client.recv().expect("runtime dropped a verdict");
        latencies.push(verdict.latency_units);
        in_flight -= 1;
    }
    let elapsed = started.elapsed();
    drop(client);
    let run = runtime.finish();
    assert_eq!(
        run.report.tasks_completed + run.report.tasks_capped,
        args.tasks,
        "{name}: every submitted task must reach a verdict or cap out"
    );
    // Replay cross-check: the journal folds to the identical live report.
    assert_eq!(
        report_from_journal(&run.journal),
        run.report,
        "{name}: journal replay must reproduce the live report exactly"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Outcome {
        name,
        run,
        elapsed,
        latencies,
    }
}

/// Schedule-independent structure of a finished run: everything that must
/// be bit-identical between an uninterrupted run and one reassembled from
/// crash + WAL recovery. (Wall-clock stamps and cross-task interleaving
/// legitimately differ; fault draws, votes, verdicts, and per-task job
/// counts may not.)
#[derive(Debug, PartialEq, Eq)]
struct RunShape {
    total_jobs: u64,
    completed: usize,
    correct: usize,
    capped: usize,
    poisoned: usize,
    /// `(task, verdict vote or None, jobs dispatched)`, sorted by task.
    /// Failed tasks are tagged by `kind` (0 verdict, 1 capped, 2 poisoned).
    verdicts: Vec<(u32, u8, Option<bool>, u64)>,
}

fn shape(journal: &Journal) -> RunShape {
    let mut jobs: HashMap<u32, u64> = HashMap::new();
    let mut verdicts: Vec<(u32, u8, Option<bool>)> = Vec::new();
    let mut s = RunShape {
        total_jobs: 0,
        completed: 0,
        correct: 0,
        capped: 0,
        poisoned: 0,
        verdicts: Vec::new(),
    };
    for e in journal.events() {
        match e.event {
            RunEvent::JobDispatched { task, .. } => {
                s.total_jobs += 1;
                *jobs.entry(task).or_default() += 1;
            }
            RunEvent::VerdictReached { task, value, .. } => {
                s.completed += 1;
                if value {
                    s.correct += 1;
                }
                verdicts.push((task, 0, Some(value)));
            }
            RunEvent::TaskCapped { task } => {
                s.capped += 1;
                verdicts.push((task, 1, None));
            }
            RunEvent::TaskPoisoned { task, .. } => {
                s.poisoned += 1;
                verdicts.push((task, 2, None));
            }
            _ => {}
        }
    }
    verdicts.sort_unstable();
    s.verdicts = verdicts
        .into_iter()
        .map(|(task, kind, vote)| (task, kind, vote, jobs.get(&task).copied().unwrap_or(0)))
        .collect();
    s
}

/// Worker profile for chaos runs: lies *and* panics, both drawn purely
/// from `(seed, task, replica)` so the golden and recovered runs face
/// byte-identical adversity.
fn chaos_profile() -> FaultProfile {
    FaultProfile {
        wrong_rate: WRONG_RATE,
        hang_rate: 0.0,
        crash_rate: 0.05,
        think: Duration::ZERO,
    }
}

fn chaos_cfg(args: &Args, tasks: usize, wal: Option<PathBuf>) -> RuntimeConfig {
    // With a cartel armed, the coordinator fights back: spot-checks with
    // probationary re-admission, weighted strikes, and verdict voiding —
    // so the crash points land amid live audit state.
    let audit = if args.cartel > 0 {
        AuditPolicy::spot(0.2)
    } else {
        AuditPolicy::disabled()
    };
    RuntimeConfig {
        workers: Some(args.workers),
        queue_cap: tasks.max(1),
        max_active: 64,
        deadline: Duration::from_secs(30),
        discipline: audit.is_enabled().then(QuarantinePolicy::default),
        audit,
        audit_seed: args.seed,
        // With `--hedge`, every chaos leg (golden, crashed, recovered)
        // arms the same quantile trigger, so crash points land amid live
        // hedge pairs and HedgeLaunched events must survive the WAL.
        hedge: args.hedge.then(hedge_policy),
        assignment: args.assignment,
        wal,
        ..RuntimeConfig::default()
    }
}

/// Submits the whole roster (ids are assigned in submission order, so they
/// land on the roster's own ids), lets the run finish — or crash at its
/// chaos point — and returns it.
fn run_roster(
    cfg: RuntimeConfig,
    margin: VoteMargin,
    seed: u64,
    cartel: Option<Cartel>,
    straggle: bool,
    roster: &[(u32, Payload)],
) -> RuntimeRun {
    let runtime = Runtime::start(cfg, Iterative::new(margin), move |index| match cartel {
        Some(c) => Box::new(CartelWorker::new(index, seed, c, chaos_profile())) as Box<dyn Worker>,
        None if straggle => Box::new(StragglerWorker::new(index, seed, chaos_profile())),
        None => Box::new(FaultyWorker::new(seed, chaos_profile())),
    });
    let client = runtime.client();
    for (task, payload) in roster {
        match client.submit(payload.clone()) {
            SubmitOutcome::Shed => panic!("chaos queue_cap admits the whole roster"),
            SubmitOutcome::Accepted { task: id } | SubmitOutcome::Queued { task: id } => {
                assert_eq!(id, *task, "submission order must assign roster ids");
            }
        }
    }
    drop(client);
    runtime.finish()
}

/// The chaos harness: golden run, then crash-at-point + recover rounds.
/// Returns process exit code.
fn chaos(args: &Args) -> i32 {
    // Injected worker crashes are supervised and expected by the hundreds;
    // keep their panic backtraces off stderr, but let real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected worker crash"));
        if !injected {
            default_hook(info);
        }
    }));
    let tasks = if args.smoke { 150 } else { args.tasks };
    let margin = VoteMargin::new(MARGIN).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let roster: Vec<(u32, Payload)> = decompose(formula.num_vars(), tasks)
        .into_iter()
        .enumerate()
        .map(|(i, block)| {
            (
                i as u32,
                Payload::Sat {
                    formula: formula.clone(),
                    block,
                },
            )
        })
        .collect();

    let cartel = (args.cartel > 0).then(|| Cartel::new(args.cartel, 0.25));
    let golden = run_roster(
        chaos_cfg(args, tasks, None),
        margin,
        args.seed,
        cartel,
        args.hedge,
        &roster,
    );
    assert!(!golden.crashed);
    let golden_shape = shape(&golden.journal);
    let golden_events = golden.journal.events().len();
    println!(
        "chaos: golden run: {} tasks, {} jobs, {} worker crashes, {} poisoned, {} audits \
         ({} failed, {} voided), {} hedges, {} events",
        golden.report.tasks_completed,
        golden.report.total_jobs,
        golden.report.worker_crashes,
        golden.report.tasks_poisoned,
        golden.report.audits,
        golden.report.audit_failures,
        golden.report.verdicts_voided,
        golden.report.hedges_launched,
        golden_events,
    );
    if args.hedge {
        assert!(
            golden.report.hedges_launched > 0,
            "the hedged chaos pool must actually fire hedges"
        );
    }
    if cartel.is_some() {
        assert!(
            golden.report.audits > 0,
            "an armed cartel must trigger audits"
        );
    }

    let wal_dir = std::env::temp_dir().join(format!("smartred-chaos-{}", std::process::id()));
    let mut failed = false;
    for (round, frac) in [0.2, 0.5, 0.8].into_iter().enumerate() {
        let crash_at = ((golden_events as f64 * frac) as u64).max(1);
        let wal = wal_dir.join(format!("round-{round}.wal.jsonl"));
        let mut cfg = chaos_cfg(args, tasks, Some(wal.clone()));
        cfg.crash_after_events = Some(crash_at);
        let crashed = run_roster(cfg, margin, args.seed, cartel, args.hedge, &roster);
        assert!(
            crashed.crashed,
            "the coordinator must die at its chaos point"
        );

        let (runtime, client, rec) = Runtime::recover(
            chaos_cfg(args, tasks, Some(wal.clone())),
            Iterative::new(margin),
            {
                let seed = args.seed;
                let straggle = args.hedge;
                move |index| match cartel {
                    Some(c) => Box::new(CartelWorker::new(index, seed, c, chaos_profile()))
                        as Box<dyn Worker>,
                    None if straggle => {
                        Box::new(StragglerWorker::new(index, seed, chaos_profile()))
                    }
                    None => Box::new(FaultyWorker::new(seed, chaos_profile())),
                }
            },
            &roster,
        )
        .expect("WAL recovery");
        drop(client);
        let run = runtime.finish();
        assert!(!run.crashed);
        assert_eq!(
            report_from_journal(&run.journal),
            run.report,
            "recovered run: journal replay must reproduce the live report exactly"
        );
        // With audits armed, retaliation re-tallies whatever happens to be
        // open at conviction time, so per-task job counts legitimately
        // differ across schedules; the invariants are exactly-once
        // decisions and exact replay. Without audits, the full golden
        // shape must match bit for bit.
        let recovered_shape = shape(&run.journal);
        let ok = if cartel.is_some() {
            let mut decisions: HashMap<u32, u32> = HashMap::new();
            for &(task, _, _, _) in &recovered_shape.verdicts {
                *decisions.entry(task).or_default() += 1;
            }
            roster.len() == decisions.len() && decisions.values().all(|&c| c == 1)
        } else {
            recovered_shape == golden_shape
        };
        println!(
            "chaos: round {round}: killed coordinator after {crash_at}/{golden_events} events \
             (torn tail: {}), resumed {} open + {} decided + {} unseen tasks, re-armed {} jobs \
             -> {}",
            rec.torn_tail,
            rec.tasks_resumed,
            rec.tasks_decided,
            rec.tasks_seeded,
            rec.jobs_rearmed,
            if ok { "matches golden" } else { "MISMATCH" },
        );
        if !ok {
            eprintln!(
                "FAIL: round {round}: recovered shape diverged from golden\n  golden:    \
                 {golden_shape:?}\n  recovered: {recovered_shape:?}"
            );
            if let Some(path) = &args.journal {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).expect("create journal directory");
                    }
                }
                std::fs::copy(&wal, path).expect("preserve failing WAL");
                eprintln!("failing WAL preserved at {path}");
            }
            failed = true;
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    if failed {
        return 1;
    }
    println!("chaos recovery holds: all crash points converge to the golden run");
    0
}

/// The matched-cost acceptance demo: against an adaptive cartel, an
/// audit-enabled strategy must achieve strictly higher measured
/// reliability than the best audit-free strategy at no greater total cost
/// (replicas + audits). Returns process exit code.
fn audit_demo(args: &Args) -> i32 {
    let tasks = if args.smoke { 200 } else { 400 };
    let demo = Args {
        tasks,
        shards: 1,
        journal: None,
        chaos: false,
        audit_demo: true,
        bench_json: None,
        ..args.clone()
    };
    // A coalition of half the pool lying in concert on a quarter of the
    // tasks (and behaving honestly otherwise). On a lied-on task the vote
    // splits evenly, so *no* replication level fixes it: the margin race
    // is a fair coin walk that loses half the decided races and has
    // unbounded expected length besides — which is why every leg runs
    // under a job cap (a capped task fails, delivering no answer). An
    // auditor that recomputes one sample convicts the whole coalition.
    let cartel = Cartel::new(
        if args.cartel > 0 {
            args.cartel
        } else {
            (args.workers / 2) as u32
        },
        0.25,
    );
    // Bounds each fair-coin tally race; see `drive`.
    let cap = Some(64);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(demo.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let window = 64;
    println!(
        "audit-demo: {} tasks, {} workers, cartel of {} lying on {:.0}% of tasks",
        demo.tasks,
        demo.workers,
        cartel.size,
        cartel.lie_rate * 100.0
    );
    let d4 = VoteMargin::new(4).unwrap();
    let d6 = VoteMargin::new(6).unwrap();
    let outcomes = [
        drive(
            "IR-4",
            Iterative::new(d4),
            &formula,
            &demo,
            window,
            Regime {
                audit: AuditPolicy::disabled(),
                cartel: Some(cartel),
                job_cap: cap,
                ..Regime::honest()
            },
        ),
        drive(
            "IR-6",
            Iterative::new(d6),
            &formula,
            &demo,
            window,
            Regime {
                audit: AuditPolicy::disabled(),
                cartel: Some(cartel),
                job_cap: cap,
                ..Regime::honest()
            },
        ),
        drive(
            "IR-4+audit",
            Iterative::new(d4),
            &formula,
            &demo,
            window,
            Regime {
                audit: AuditPolicy::spot(0.2),
                cartel: Some(cartel),
                job_cap: cap,
                ..Regime::honest()
            },
        ),
    ];
    // Delivered reliability: the fraction of *submitted* tasks whose
    // accepted answer was correct. A capped task delivered nothing, so it
    // counts against the strategy — unlike `report.reliability()`, which
    // would quietly drop failed races from the denominator.
    let delivered = |o: &Outcome| o.run.report.tasks_correct as f64 / demo.tasks as f64;
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>8} {:>8} {:>12}",
        "strat", "tasks/s", "jobs/task", "audits", "total cost", "voided", "capped", "delivered"
    );
    for o in &outcomes {
        println!(
            "{:<12} {:>10.1} {:>12.2} {:>10} {:>12} {:>8} {:>8} {:>12.4}",
            o.name,
            o.throughput(),
            o.run.report.cost_factor(),
            o.run.report.audits,
            o.run.report.total_cost(),
            o.run.report.verdicts_voided,
            o.run.report.tasks_capped,
            delivered(o),
        );
    }
    let audited = &outcomes[2];
    let best_free = outcomes[..2]
        .iter()
        .max_by(|a, b| delivered(a).total_cmp(&delivered(b)))
        .unwrap();
    let mut failed = false;
    if audited.run.report.audits == 0 {
        eprintln!("FAIL: the audit-enabled run never audited anything");
        failed = true;
    }
    if delivered(audited) <= delivered(best_free) {
        eprintln!(
            "FAIL: audited delivered reliability {:.4} must strictly beat the best audit-free \
             ({}) {:.4}",
            delivered(audited),
            best_free.name,
            delivered(best_free)
        );
        failed = true;
    }
    // Matched cost against the *expensive* audit-free competitor: buying
    // more replication (IR-6) costs at least as much as IR-4 plus the
    // audit budget, yet loses on measured reliability.
    if audited.run.report.total_cost() > outcomes[1].run.report.total_cost() {
        eprintln!(
            "FAIL: audited total cost {} must not exceed IR-6's {}",
            audited.run.report.total_cost(),
            outcomes[1].run.report.total_cost()
        );
        failed = true;
    }
    if failed {
        return 1;
    }
    println!(
        "matched-cost frontier holds: IR-4+audit delivers {:.4} at cost {}, beating {} {:.4} at \
         cost {}",
        delivered(audited),
        audited.run.report.total_cost(),
        best_free.name,
        delivered(best_free),
        outcomes[1].run.report.total_cost(),
    );
    0
}

/// Writes one bench-JSON document, creating parent directories as
/// needed — the single emitter shared by every `--bench-json` mode.
fn write_bench_json(path: &str, json: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create bench-json directory");
        }
    }
    std::fs::write(path, json).expect("write bench json");
    println!("bench-json: wrote {path}");
}

/// Sweeps audit fractions {0, 0.05, 0.2} under the standard 30%-faulty
/// pool and writes the machine-readable throughput baseline
/// (`BENCH_6.json`) so audit overhead and future perf PRs have a
/// reference point.
fn bench_json(args: &Args, path: &str) {
    let d = VoteMargin::new(MARGIN).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let window = 64;
    let mut rows = Vec::new();
    for frac in [0.0, 0.05, 0.2] {
        let audit = if frac > 0.0 {
            AuditPolicy::spot(frac)
        } else {
            AuditPolicy::disabled()
        };
        let regime = Regime {
            audit,
            ..Regime::honest()
        };
        let o = drive("IR", Iterative::new(d), &formula, args, window, regime);
        println!(
            "bench-json: audit fraction {frac}: {:.1} tasks/s, {:.2} jobs/task, {} audits, \
             reliability {:.4}",
            o.throughput(),
            o.run.report.cost_factor(),
            o.run.report.audits,
            o.run.report.reliability(),
        );
        rows.push(format!(
            "    {{\"audit_fraction\": {frac}, \"tasks_per_sec\": {:.2}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"jobs_per_task\": {:.4}, \"audits\": {}, \"total_cost\": {}, \
             \"reliability\": {:.4}}}",
            o.throughput(),
            o.percentile(0.50) * 1e3,
            o.percentile(0.99) * 1e3,
            o.run.report.cost_factor(),
            o.run.report.audits,
            o.run.report.total_cost(),
            o.run.report.reliability(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": 6,\n  \"name\": \"serve_bench audit-fraction sweep\",\n  \"tasks\": \
         {},\n  \"workers\": {},\n  \"seed\": {},\n  \"wrong_rate\": {WRONG_RATE},\n  \
         \"margin\": {MARGIN},\n  \"runs\": [\n{}\n  ]\n}}\n",
        args.tasks,
        args.workers,
        args.seed,
        rows.join(",\n")
    );
    write_bench_json(path, &json);
}

/// One leg of the shard sweep: a closed-loop run of zero-work synthetic
/// tasks on the sharded runtime with a durable per-event-fsync WAL, so
/// the measurement isolates the coordination plane — the thing sharding
/// scales — rather than worker arithmetic. Each shard's fsync stream is
/// serialized by its coordinator; N shards overlap N streams.
fn measure_shards(args: &Args, shards: usize, window: usize) -> Outcome {
    let wal_dir =
        std::env::temp_dir().join(format!("smartred-bench7-{}-{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("create bench WAL directory");
    let cfg = ShardedConfig {
        base: RuntimeConfig {
            workers: Some(args.workers),
            queue_cap: window,
            max_active: window,
            deadline: Duration::from_secs(5),
            wal_batch: 1,
            ..RuntimeConfig::default()
        },
        shards,
        wal_dir: Some(wal_dir.clone()),
        admission_cap: window,
        crash_after: None,
    };
    let seed = args.seed;
    let profile = FaultProfile {
        wrong_rate: WRONG_RATE,
        hang_rate: 0.0,
        crash_rate: 0.0,
        think: Duration::ZERO,
    };
    let runtime = ShardedRuntime::start(
        cfg,
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        move |_| Box::new(FaultyWorker::new(seed, profile)),
    );
    let client = runtime.client();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(args.tasks);
    let mut in_flight = 0usize;
    for _ in 0..args.tasks {
        while in_flight >= window {
            let verdict = client.recv().expect("runtime dropped a verdict");
            latencies.push(verdict.latency_units);
            in_flight -= 1;
        }
        loop {
            let outcome = client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        in_flight += 1;
    }
    while in_flight > 0 {
        let verdict = client.recv().expect("runtime dropped a verdict");
        latencies.push(verdict.latency_units);
        in_flight -= 1;
    }
    let elapsed = started.elapsed();
    drop(client);
    let sharded = runtime.finish();
    let _ = std::fs::remove_dir_all(&wal_dir);
    assert_eq!(
        sharded.report.tasks_completed, args.tasks,
        "shards {shards}: every task must reach a verdict"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Outcome {
        name: "IR",
        run: RuntimeRun {
            report: sharded.report,
            admission: sharded.admission,
            journal: sharded.journal,
            crashed: sharded.crashed,
        },
        elapsed,
        latencies,
    }
}

/// Sweeps shard counts {1, 2, 4, …, `--shards N`} at fixed total worker
/// count and admission capacity, and writes the machine-readable
/// throughput-vs-shards baseline (`BENCH_7.json`). Verdict reliability is
/// matched across rows by construction — fault draws are keyed by
/// `(seed, task, replica)`, so shard count cannot change a single vote.
fn bench7_json(args: &Args, path: &str) {
    let mut counts: Vec<usize> = [1, 2, 4, 8]
        .into_iter()
        .filter(|&c| c <= args.shards)
        .collect();
    if !counts.contains(&args.shards) {
        counts.push(args.shards);
    }
    let window = 64;
    let mut rows = Vec::new();
    let mut jobs_per_sec = Vec::new();
    for &shards in &counts {
        let o = measure_shards(args, shards, window);
        let jps = o.run.report.total_jobs as f64 / o.elapsed.as_secs_f64();
        println!(
            "bench-json: {shards} shard(s): {:.1} tasks/s, {:.1} jobs/s, {:.2} jobs/task, \
             reliability {:.4}",
            o.throughput(),
            jps,
            o.run.report.cost_factor(),
            o.run.report.reliability(),
        );
        rows.push(format!(
            "    {{\"shards\": {shards}, \"tasks_per_sec\": {:.2}, \"jobs_per_sec\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"jobs_per_task\": {:.4}, \
             \"reliability\": {:.4}}}",
            o.throughput(),
            jps,
            o.percentile(0.50) * 1e3,
            o.percentile(0.99) * 1e3,
            o.run.report.cost_factor(),
            o.run.report.reliability(),
        ));
        jobs_per_sec.push(jps);
    }
    let speedup = jobs_per_sec.last().unwrap() / jobs_per_sec[0];
    println!(
        "bench-json: {}-shard speedup over 1 shard: {speedup:.2}x jobs/s",
        counts.last().unwrap()
    );
    let json = format!(
        "{{\n  \"bench\": 7,\n  \"name\": \"serve_bench throughput-vs-shards sweep\",\n  \
         \"tasks\": {},\n  \"workers\": {},\n  \"seed\": {},\n  \"wrong_rate\": {WRONG_RATE},\n  \
         \"margin\": {MARGIN},\n  \"wal_batch\": 1,\n  \"speedup_max_over_one\": {speedup:.2},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        args.tasks,
        args.workers,
        args.seed,
        rows.join(",\n")
    );
    write_bench_json(path, &json);
}

/// Sweeps TR/PR/IR at matched predicted reliability, hedging off vs on,
/// on a straggler-prone pool (1% of placements take 100× the fast service
/// time) and writes the latency-vs-cost frontier (`BENCH_8.json`): p50/p99
/// first-dispatch→verdict latency against jobs per task and hedge cost.
/// Returns non-zero unless hedging cuts TR's p99 while changing not a
/// single verdict (matched reliability is exact, not statistical: votes
/// are pure in `(seed, task, replica)`, so the hedged leg of each pair
/// delivers bit-identical correctness).
fn bench8_json(args: &Args, path: &str) -> i32 {
    let r = Reliability::new(1.0 - WRONG_RATE).unwrap();
    let d = VoteMargin::new(MARGIN).unwrap();
    let target = analysis::iterative::reliability(d, r);
    let k = (1..=61)
        .step_by(2)
        .map(|k| KVotes::new(k).unwrap())
        .find(|&k| analysis::traditional::reliability(k, r) >= target)
        .expect("a matching k exists below 61");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    // One task in flight, and a pool at least as wide as TR's burst of k
    // replicas, keeps queueing delay out of the measurement entirely: a
    // job's elapsed time is its service time, so the quantile trigger
    // fires on true execution-time stragglers rather than on jobs stuck
    // behind one. (With a pool narrower than the wave, queue wait counts
    // as "elapsed", spurious twins fire on queued-but-fast jobs, and the
    // added load *raises* the tail — the classic hedging failure mode.)
    // Throughput is sacrificed knowingly: this sweep measures the latency
    // frontier, BENCH_6/7 own the throughput story.
    let window = 1;
    let workers = args.workers.max(k.get() + 5);
    let regime = Regime {
        straggle: true,
        ..Regime::honest()
    };
    let mut plain = args.clone();
    plain.hedge = false;
    plain.workers = workers;
    let mut hedged = args.clone();
    hedged.hedge = true;
    hedged.workers = workers;
    println!(
        "bench-json: straggler frontier: {} tasks, {} workers, assignment {}, IR d = {} vs \
         PR/TR k = {}",
        args.tasks,
        workers,
        args.assignment.name(),
        MARGIN,
        k.get(),
    );
    let pairs = [
        (
            "TR",
            drive("TR", Traditional::new(k), &formula, &plain, window, regime),
            drive(
                "TR+h",
                Traditional::new(k),
                &formula,
                &hedged,
                window,
                regime,
            ),
        ),
        (
            "PR",
            drive("PR", Progressive::new(k), &formula, &plain, window, regime),
            drive(
                "PR+h",
                Progressive::new(k),
                &formula,
                &hedged,
                window,
                regime,
            ),
        ),
        (
            "IR",
            drive("IR", Iterative::new(d), &formula, &plain, window, regime),
            drive("IR+h", Iterative::new(d), &formula, &hedged, window, regime),
        ),
    ];
    let mut rows = Vec::new();
    let mut failed = false;
    println!(
        "{:<6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>6} {:>8} {:>12}",
        "strat",
        "hedge",
        "tasks/s",
        "p50 ms",
        "p99 ms",
        "jobs/task",
        "hedges",
        "won",
        "cost",
        "reliability"
    );
    for (name, off, on) in &pairs {
        // Verdict invariance at the shared seed: the hedged leg must buy
        // its latency with twins alone, never with a changed answer.
        if off.run.report.tasks_correct != on.run.report.tasks_correct
            || off.run.report.total_jobs != on.run.report.total_jobs
        {
            eprintln!(
                "FAIL: {name}: hedging moved a verdict or wave job ({} vs {} correct, {} vs {} \
                 jobs)",
                off.run.report.tasks_correct,
                on.run.report.tasks_correct,
                off.run.report.total_jobs,
                on.run.report.total_jobs,
            );
            failed = true;
        }
        if on.run.report.hedges_launched != on.run.report.hedges_won + on.run.report.hedges_wasted {
            eprintln!("FAIL: {name}: a launched twin escaped settlement");
            failed = true;
        }
        for o in [off, on] {
            let is_hedged = !std::ptr::eq(o, off);
            println!(
                "{:<6} {:>6} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>8} {:>6} {:>8} {:>12.4}",
                name,
                if is_hedged { "on" } else { "off" },
                o.throughput(),
                o.percentile(0.50) * 1e3,
                o.percentile(0.99) * 1e3,
                o.run.report.cost_factor(),
                o.run.report.hedges_launched,
                o.run.report.hedges_won,
                o.run.report.total_cost(),
                o.run.report.reliability(),
            );
            rows.push(format!(
                "    {{\"strategy\": \"{name}\", \"hedged\": {is_hedged}, \"tasks_per_sec\": \
                 {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"jobs_per_task\": {:.4}, \
                 \"hedges_launched\": {}, \"hedges_won\": {}, \"hedges_wasted\": {}, \
                 \"total_cost\": {}, \"reliability\": {:.4}}}",
                o.throughput(),
                o.percentile(0.50) * 1e3,
                o.percentile(0.99) * 1e3,
                o.run.report.cost_factor(),
                o.run.report.hedges_launched,
                o.run.report.hedges_won,
                o.run.report.hedges_wasted,
                o.run.report.total_cost(),
                o.run.report.reliability(),
            ));
        }
    }
    let (_, tr_off, tr_on) = &pairs[0];
    if tr_on.run.report.hedges_launched == 0 {
        eprintln!("FAIL: a 1% straggler rate must trigger hedges under TR");
        failed = true;
    }
    let (p99_off, p99_on) = (tr_off.percentile(0.99), tr_on.percentile(0.99));
    if p99_on >= p99_off {
        eprintln!(
            "FAIL: hedging must cut TR's p99 at matched reliability: {:.2} ms vs {:.2} ms",
            p99_on * 1e3,
            p99_off * 1e3,
        );
        failed = true;
    }
    let policy = hedge_policy();
    let json = format!(
        "{{\n  \"bench\": 8,\n  \"name\": \"serve_bench straggler hedging frontier\",\n  \
         \"tasks\": {},\n  \"workers\": {},\n  \"seed\": {},\n  \"wrong_rate\": {WRONG_RATE},\n  \
         \"margin\": {MARGIN},\n  \"k\": {},\n  \"assignment\": \"{}\",\n  \"window\": \
         {window},\n  \"hedge_quantile\": {},\n  \"hedge_multiplier\": {},\n  \
         \"hedge_max_per_task\": {},\n  \"slow_ms\": 100,\n  \"fast_ms\": 1,\n  \"slow_rate\": \
         0.01,\n  \"tr_p99_ms_unhedged\": {:.3},\n  \"tr_p99_ms_hedged\": {:.3},\n  \"runs\": \
         [\n{}\n  ]\n}}\n",
        args.tasks,
        workers,
        args.seed,
        k.get(),
        args.assignment.name(),
        policy.quantile,
        policy.multiplier,
        policy.max_per_task,
        p99_off * 1e3,
        p99_on * 1e3,
        rows.join(",\n")
    );
    write_bench_json(path, &json);
    if failed {
        return 1;
    }
    println!(
        "hedging frontier holds: TR p99 {:.2} ms -> {:.2} ms at bit-identical verdicts",
        p99_off * 1e3,
        p99_on * 1e3,
    );
    0
}

/// Workers for the DAG chaos harness: collude unanimously on one runtime
/// task id (so exactly that task accepts a wrong verdict and poisons its
/// descendants deterministically) and answer honestly everywhere else.
struct DagColluder {
    target: u32,
}

impl Worker for DagColluder {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        let honest = job.payload.execute();
        if job.task == self.target {
            Some((false, !honest))
        } else {
            Some((true, honest))
        }
    }
}

/// The DAG crash-point harness (`--dag --chaos`): a live map→shuffle→
/// reduce pipeline with a colluder poisoning one map task, run once
/// uninterrupted (golden) and then re-run with a durable WAL and the
/// coordinator killed at seeded points. Each crashed run's WAL must
/// tolerant-parse (torn tails included) into a journal whose DAG
/// annotation stream — `StageDecided` per decided stage, `PoisonPropagated`
/// per poisoned task — is an exact prefix of the golden run's. With
/// `--shards N` the legs run on the sharded runtime (shard 0 crashes) and
/// the check applies to the deterministic merge of all shard WAL segments.
/// Returns process exit code.
fn dag_chaos(args: &Args) -> i32 {
    use smartred_dag::{annotations_from_journal, run_dag_with, DagSpec, StageStrategy};

    let spec = DagSpec::map_shuffle_reduce(
        8,
        2,
        StageStrategy::ir(2).unwrap(),
        StageStrategy::ir(2).unwrap(),
        StageStrategy::ir(2).unwrap(),
    )
    .expect("static pipeline spec is valid");
    let total = spec.total_tasks() as usize;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let payloads: Vec<Payload> = decompose(formula.num_vars(), total)
        .into_iter()
        .map(|block| Payload::Sat {
            formula: formula.clone(),
            block,
        })
        .collect();
    // The driver submits sequentially into a fresh runtime each leg, so
    // runtime ids equal DAG ids: target map task 3, which poisons its
    // pairwise combine child (11) and, through the shuffle, both sinks.
    let target = 3;
    // Live stages decide in milliseconds; the patience only pays out on
    // the crashed legs, where it is pure added wall time.
    let patience = Duration::from_secs(2);

    let leg = |wal: Option<PathBuf>,
               crash_at: Option<u64>|
     -> (smartred_dag::LiveDagReport, RuntimeRun) {
        if args.shards > 1 {
            let mut crash = vec![None; args.shards];
            crash[0] = crash_at;
            let cfg = ShardedConfig {
                base: RuntimeConfig {
                    workers: Some(args.workers),
                    journal: true,
                    queue_cap: total,
                    max_active: total,
                    ..RuntimeConfig::default()
                },
                shards: args.shards,
                wal_dir: wal,
                admission_cap: total,
                crash_after: crash_at.map(|_| crash),
            };
            let rt = ShardedRuntime::start(cfg, StageStrategy::ir(2).unwrap(), move |_| {
                Box::new(DagColluder { target }) as Box<dyn Worker>
            });
            let client = rt.client();
            let report = run_dag_with(&client, &spec, &payloads, patience);
            drop(client);
            let run = rt.finish();
            (
                report,
                RuntimeRun {
                    report: run.report,
                    admission: run.admission,
                    journal: run.journal,
                    crashed: run.crashed,
                },
            )
        } else {
            let cfg = RuntimeConfig {
                workers: Some(args.workers),
                journal: true,
                queue_cap: total,
                max_active: total,
                wal: wal.map(|d| d.join("dag.wal.jsonl")),
                crash_after_events: crash_at,
                ..RuntimeConfig::default()
            };
            let rt = Runtime::start(cfg, StageStrategy::ir(2).unwrap(), move |_| {
                Box::new(DagColluder { target }) as Box<dyn Worker>
            });
            let client = rt.client();
            let report = run_dag_with(&client, &spec, &payloads, patience);
            drop(client);
            (report, rt.finish())
        }
    };

    let (golden_report, golden_run) = leg(None, None);
    assert!(!golden_report.crashed && !golden_run.crashed);
    let golden_ann = annotations_from_journal(&golden_run.journal);
    let mut golden_stages = golden_ann.stages.clone();
    golden_stages.sort_unstable();
    assert_eq!(
        golden_stages,
        vec![(0, 7, 1), (1, 7, 1), (2, 0, 2)],
        "golden DAG run: one poisoned map task must corrupt both sinks"
    );
    assert_eq!(golden_ann.poisoned_tasks, 3);
    let golden_events = golden_run.journal.events().len();
    println!(
        "dag-chaos: golden pipeline: {} tasks, {} jobs, {} poisoned, stages {:?}, {} events, \
         {} shard(s)",
        total,
        golden_report.jobs,
        golden_report.poisoned_tasks,
        golden_ann.stages,
        golden_events,
        args.shards,
    );

    let wal_dir = std::env::temp_dir().join(format!("smartred-dagchaos-{}", std::process::id()));
    let mut failed = false;
    for (round, frac) in [0.25, 0.6, 0.9].into_iter().enumerate() {
        // Per-coordinator crash point: the sharded legs kill shard 0 after
        // its share of the golden stream.
        let stream = golden_events / args.shards.max(1);
        let crash_at = ((stream as f64 * frac) as u64).max(1);
        let dir = wal_dir.join(format!("round-{round}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dag-chaos WAL directory");
        let (report, run) = leg(Some(dir.clone()), Some(crash_at));
        assert!(
            report.crashed && run.crashed,
            "round {round}: the coordinator must die at its chaos point"
        );
        // Reassemble whatever reached disk: tolerant-parse each WAL
        // segment (the killed shard's tail may be torn mid-record) and
        // merge them deterministically.
        let mut parts = Vec::new();
        let mut torn = false;
        let segments: Vec<PathBuf> = if args.shards > 1 {
            (0..args.shards)
                .map(|k| ShardedConfig::wal_segment(&dir, k))
                .collect()
        } else {
            vec![dir.join("dag.wal.jsonl")]
        };
        for seg in &segments {
            let text = std::fs::read_to_string(seg).expect("read WAL segment");
            let prefix = Journal::from_jsonl_prefix(&text).expect("WAL prefix parses");
            torn |= prefix.torn;
            parts.push(prefix.journal);
        }
        let merged = Journal::merge_sharded(&parts);
        let ann = annotations_from_journal(&merged);
        // Durability contract: the WAL's annotation stream is an exact
        // prefix of the golden one — never a reordering, never a stage the
        // run hadn't decided, and no poison marks beyond the golden count.
        let ok = ann.stages.len() <= golden_ann.stages.len()
            && ann.stages[..] == golden_ann.stages[..ann.stages.len()]
            && ann.poisoned_tasks <= golden_ann.poisoned_tasks;
        println!(
            "dag-chaos: round {round}: killed after {crash_at}/{stream} events (torn: {torn}), \
             WAL holds {} events, {} of {} stage verdicts, {} poison marks -> {}",
            merged.len(),
            ann.stages.len(),
            golden_ann.stages.len(),
            ann.poisoned_tasks,
            if ok { "prefix of golden" } else { "MISMATCH" },
        );
        if !ok {
            eprintln!(
                "FAIL: round {round}: WAL annotations diverged from golden\n  golden: {:?} / {} \
                 poisoned\n  walled: {:?} / {} poisoned",
                golden_ann.stages, golden_ann.poisoned_tasks, ann.stages, ann.poisoned_tasks
            );
            if let Some(path) = &args.journal {
                if let Some(parent) = std::path::Path::new(path).parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent).expect("create journal directory");
                    }
                }
                std::fs::copy(&segments[0], path).expect("preserve failing WAL");
                eprintln!("failing WAL preserved at {path}");
            }
            failed = true;
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    if failed {
        return 1;
    }
    println!("dag-chaos holds: every crash point leaves a WAL prefix of the golden annotations");
    0
}

/// One policy of the DAG comparison: a label plus the per-stage strategy
/// assignment baked into its spec.
struct DagPolicy {
    label: String,
    spec: smartred_dag::DagSpec,
    /// `true` for the per-stage mixes, `false` for the uniform baselines.
    mix: bool,
}

/// Everything BENCH_9 records about one policy.
struct DagRow {
    policy: DagPolicy,
    stats: smartred_dag::DagStats,
    /// Nearest-rank percentiles of per-instance makespans, in sim units.
    p50_makespan: f64,
    p99_makespan: f64,
    /// Journal digest of the instance-0 run (replay-checked).
    digest: String,
    /// Hedge twins launched in the instance-0 run.
    hedge_jobs: u64,
}

/// Measures `policy` over `runs` Monte-Carlo instances: aggregate stats
/// through [`smartred_dag::monte_carlo`] (honoring `SMARTRED_THREADS` —
/// the index-ordered fold is bit-identical at every thread count), plus a
/// journaled instance-0 run that must replay to its live report exactly.
fn measure_dag(policy: DagPolicy, cfg: &smartred_dag::DagSimConfig, runs: usize) -> DagRow {
    use smartred_core::parallel::Threads;
    use smartred_dag::{instance_seed, monte_carlo, run, run_journaled};

    let stats = monte_carlo(&policy.spec, cfg, runs, Threads::Auto);
    let mut makespans: Vec<f64> = (0..runs)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = instance_seed(cfg.seed, i as u64);
            run(&policy.spec, &c).makespan_units
        })
        .collect();
    makespans.sort_by(|a, b| a.partial_cmp(b).expect("makespans are finite"));
    let mut c0 = cfg.clone();
    c0.seed = instance_seed(cfg.seed, 0);
    let (live, journal) = run_journaled(&policy.spec, &c0);
    assert_eq!(
        smartred_dag::report_from_journal(&journal, &policy.spec),
        live,
        "{}: DAG journal replay must reproduce the live report exactly",
        policy.label
    );
    DagRow {
        stats,
        p50_makespan: smartred_stats::percentile_nearest_rank(&makespans, 0.50),
        p99_makespan: smartred_stats::percentile_nearest_rank(&makespans, 0.99),
        digest: journal.digest_hex(),
        hedge_jobs: live.hedge_jobs,
        policy,
    }
}

/// The `--dag` comparison: per-stage strategy mixes vs budget-matched
/// uniform strategies on a poisoned map→shuffle→reduce pipeline, written
/// as `BENCH_9.json`. Returns process exit code.
///
/// The adversary corrupts the wide map cut hard and everything else only
/// lightly, so redundancy bought *uniformly* is mostly wasted on stages
/// nobody attacks while the attacked stage stays under-defended. Each
/// uniform family (TR, PR, IR) is calibrated empirically to the cheapest
/// parameter whose measured mean job cost meets the mix's budget — the
/// uniform spends at least as much and must still let more poison escape.
fn bench9_json(args: &Args, path: &str) -> i32 {
    use smartred_dag::{DagSimConfig, DagSpec, PoisonAdversary, StageStrategy};

    /// Map width; the attacked cut. Combine matches it pairwise.
    const WIDTH: u32 = 16;
    /// Reduce fan-in width — the pipeline's sink stage.
    const REDUCE: u32 = 2;
    /// Wrong-vote rate on the targeted map stage.
    const TARGETED: f64 = 0.3;
    /// Background wrong-vote rate everywhere else.
    const BACKGROUND: f64 = 0.02;

    let runs = if args.smoke { 160 } else { 400 };
    let cfg = DagSimConfig {
        seed: args.seed,
        adversary: PoisonAdversary::targeting(0, TARGETED, BACKGROUND),
        // Service draws are U[0.5, 1.5] × node speed; the default 1.3×
        // trigger leaves a twin almost no room to win the race, so the
        // hedged row would only ever show the cost side. 1.0× lets twins
        // beat genuine slow draws and actually trim the stage tail.
        hedge_after_units: 1.0,
        ..DagSimConfig::default()
    };

    let pipeline = |map: StageStrategy, combine: StageStrategy, reduce: StageStrategy, mix| {
        let spec = DagSpec::map_shuffle_reduce(WIDTH, REDUCE, map, combine, reduce)
            .expect("static pipeline spec is valid");
        DagPolicy {
            label: format!("{}/{}/{}", map.label(), combine.label(), reduce.label()),
            spec,
            mix,
        }
    };
    let uniform = |s: StageStrategy| pipeline(s, s, s, false);

    println!(
        "bench-json: DAG pipeline: map {WIDTH} -> combine {WIDTH} -> reduce {REDUCE}, \
         adversary {TARGETED} on map / {BACKGROUND} background, {runs} runs, seed {}",
        args.seed
    );
    // The mix: heavy IR on the attacked cut, light IR elsewhere (enough to
    // absorb background noise), and a hedged variant of the same votes.
    let ir = |d: usize| StageStrategy::ir(d).unwrap();
    let mix = measure_dag(pipeline(ir(8), ir(2), ir(2), true), &cfg, runs);
    let hedged_mix = measure_dag(
        pipeline(StageStrategy::hir(8).unwrap(), ir(2), ir(2), true),
        &cfg,
        runs,
    );
    let budget = mix.stats.mean_cost;

    // Calibration: walk each uniform family upward and keep the first
    // parameter whose measured budget reaches the mix's. Cost is monotone
    // in the parameter, so the walk stops at the matched point; a short
    // Monte-Carlo (cost concentrates fast) keeps calibration cheap.
    let calibrate = |candidates: Vec<StageStrategy>| -> DagPolicy {
        use smartred_core::parallel::Threads;
        let calibration_runs = 60;
        let mut last = None;
        for s in candidates {
            let p = uniform(s);
            let cost =
                smartred_dag::monte_carlo(&p.spec, &cfg, calibration_runs, Threads::Auto).mean_cost;
            let done = cost >= budget;
            last = Some(p);
            if done {
                break;
            }
        }
        last.expect("candidate list is nonempty")
    };
    let tr_uniform = calibrate(
        (1..=31)
            .step_by(2)
            .map(|k| StageStrategy::tr(k).unwrap())
            .collect(),
    );
    let pr_uniform = calibrate(
        (1..=31)
            .step_by(2)
            .map(|k| StageStrategy::pr(k).unwrap())
            .collect(),
    );
    let ir_uniform = calibrate((1..=12).map(|d| StageStrategy::ir(d).unwrap()).collect());

    let rows = [
        mix,
        hedged_mix,
        measure_dag(tr_uniform, &cfg, runs),
        measure_dag(pr_uniform, &cfg, runs),
        measure_dag(ir_uniform, &cfg, runs),
    ];

    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "policy", "mix", "escape", "cost", "makespan", "p50 mk", "p99 mk", "poisoned"
    );
    let mut json_rows = Vec::new();
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>10.4} {:>10.1} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
            r.policy.label,
            if r.policy.mix { "yes" } else { "no" },
            r.stats.escape_rate,
            r.stats.mean_cost,
            r.stats.mean_makespan,
            r.p50_makespan,
            r.p99_makespan,
            r.stats.mean_poisoned,
        );
        json_rows.push(format!(
            "    {{\"policy\": \"{}\", \"mix\": {}, \"escape_rate\": {:.6}, \"mean_cost\": \
             {:.4}, \"mean_makespan\": {:.4}, \"p50_makespan\": {:.4}, \"p99_makespan\": \
             {:.4}, \"mean_poisoned\": {:.4}, \"journal_digest\": \"{}\"}}",
            r.policy.label,
            r.policy.mix,
            r.stats.escape_rate,
            r.stats.mean_cost,
            r.stats.mean_makespan,
            r.p50_makespan,
            r.p99_makespan,
            r.stats.mean_poisoned,
            r.digest,
        ));
    }

    let mut failed = false;
    let (mix, hedged_mix, uniforms) = (&rows[0], &rows[1], &rows[2..]);
    for u in uniforms {
        if u.stats.mean_cost < budget * 0.98 {
            eprintln!(
                "FAIL: uniform {} calibrated below the mix budget ({:.1} vs {:.1} jobs)",
                u.policy.label, u.stats.mean_cost, budget
            );
            failed = true;
        }
        if mix.stats.escape_rate >= u.stats.escape_rate {
            eprintln!(
                "FAIL: mix {} escape {:.4} must beat uniform {} escape {:.4} at matched cost \
                 ({:.1} vs {:.1} jobs)",
                mix.policy.label,
                mix.stats.escape_rate,
                u.policy.label,
                u.stats.escape_rate,
                budget,
                u.stats.mean_cost,
            );
            failed = true;
        }
    }
    if hedged_mix.hedge_jobs == 0 {
        eprintln!("FAIL: the hedged mix never launched a twin");
        failed = true;
    }

    let json = format!(
        "{{\n  \"bench\": 9,\n  \"name\": \"serve_bench DAG per-stage strategy mix\",\n  \
         \"width\": {WIDTH},\n  \"reduce_width\": {REDUCE},\n  \"nodes\": {},\n  \"seed\": \
         {},\n  \"runs\": {runs},\n  \"targeted_wrong\": {TARGETED},\n  \"background_wrong\": \
         {BACKGROUND},\n  \"link_bandwidth\": {},\n  \"runs_detail\": \"all quantities in \
         simulated units; bit-identical across SMARTRED_THREADS\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        cfg.nodes,
        args.seed,
        cfg.link.bandwidth,
        json_rows.join(",\n")
    );
    write_bench_json(path, &json);
    if failed {
        return 1;
    }
    println!(
        "per-stage frontier holds: mix {} escapes {:.4} at {:.1} jobs; every budget-matched \
         uniform escapes more",
        mix.policy.label, mix.stats.escape_rate, budget
    );
    0
}

/// The durable-storage chaos harness (`--disk-chaos`): reruns a golden
/// workload with fault-injecting disks mounted under the coordinator's
/// WAL. Every *detectable* fault (failed fsync, short write, power-loss
/// torn write) must crash the coordinator mid-run, and `Runtime::recover`
/// on a healthy disk must converge to the golden journal shape with an
/// exact report replay. Silent bit rot is the one fault a crash cannot
/// flag, so the final leg arms checksummed framing and requires recovery
/// to *refuse* the rotten segment (quarantining it) rather than replay a
/// corrupt record. Returns process exit code.
fn disk_chaos_mode(args: &Args) -> i32 {
    // Injected worker crashes are supervised and expected; keep their
    // panic backtraces off stderr, but let real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected worker crash"));
        if !injected {
            default_hook(info);
        }
    }));
    let tasks = if args.smoke { 24 } else { 48 };
    let margin = VoteMargin::new(MARGIN).unwrap();
    let roster: Vec<(u32, Payload)> = (0..tasks)
        .map(|i| {
            (
                i as u32,
                Payload::Synthetic {
                    answer: i % 2 == 0,
                    work: Duration::ZERO,
                },
            )
        })
        .collect();
    let seed = args.seed;
    let factory = move |_| Box::new(FaultyWorker::new(seed, chaos_profile())) as Box<dyn Worker>;

    let golden = run_roster(
        chaos_cfg(args, tasks, None),
        margin,
        seed,
        None,
        false,
        &roster,
    );
    assert!(!golden.crashed);
    let golden_shape = shape(&golden.journal);
    println!(
        "disk-chaos: golden run: {} tasks, {} jobs, {} events",
        golden.report.tasks_completed,
        golden.report.total_jobs,
        golden.journal.events().len(),
    );

    let dir = std::env::temp_dir().join(format!("smartred-disk-chaos-{}", std::process::id()));
    let mut failed = false;

    // Detectable faults: each must crash the coordinator (fail-stop, never
    // limp on over a disk it cannot trust), then recover cleanly.
    type ArmFault = fn(&mut DiskFaultPlan);
    let legs: [(&str, ArmFault); 3] = [
        ("failed-fsync", |p| p.fail_fsync_at = Some(20)),
        ("short-write", |p| p.short_write_at = Some(30)),
        ("power-loss", |p| p.crash_after_writes = Some(40)),
    ];
    for (name, arm) in legs {
        let wal = dir.join(format!("{name}.wal.jsonl"));
        let mut cfg = chaos_cfg(args, tasks, Some(wal.clone()));
        let mut plan = DiskFaultPlan::none(seed ^ 0xd15c);
        arm(&mut plan);
        cfg.disk_faults = Some(plan);
        let crashed = run_roster(cfg, margin, seed, None, false, &roster);
        if !crashed.crashed {
            eprintln!("FAIL: {name}: injected disk fault did not crash the coordinator");
            failed = true;
            continue;
        }
        let (runtime, client, rec) = Runtime::recover(
            chaos_cfg(args, tasks, Some(wal.clone())),
            Iterative::new(margin),
            factory,
            &roster,
        )
        .expect("recovery from a healthy disk");
        drop(client);
        let run = runtime.finish();
        assert!(!run.crashed);
        let replay_ok = report_from_journal(&run.journal) == run.report;
        let shape_ok = shape(&run.journal) == golden_shape;
        println!(
            "disk-chaos: {name}: coordinator died mid-run (torn tail: {}), resumed {} open + \
             {} decided + {} unseen tasks -> {}",
            rec.torn_tail,
            rec.tasks_resumed,
            rec.tasks_decided,
            rec.tasks_seeded,
            if replay_ok && shape_ok {
                "matches golden"
            } else {
                "MISMATCH"
            },
        );
        if !replay_ok || !shape_ok {
            eprintln!("FAIL: {name}: recovered run diverged from golden (replay {replay_ok}, shape {shape_ok})");
            failed = true;
        }
    }

    // Silent bit rot: the disk flips one bit in place after the 25th
    // write, the run completes none the wiser, and checksummed recovery
    // must refuse the segment instead of replaying a corrupt record.
    let wal = dir.join("bit-rot.wal.jsonl");
    let mut cfg = chaos_cfg(args, tasks, Some(wal.clone()));
    cfg.wal_checksum = true;
    let mut plan = DiskFaultPlan::none(seed ^ 0xb17);
    plan.flip_bit_after = Some(25);
    cfg.disk_faults = Some(plan);
    let run = run_roster(cfg, margin, seed, None, false, &roster);
    assert!(!run.crashed, "bit rot is silent: the run must complete");
    let mut clean = chaos_cfg(args, tasks, Some(wal.clone()));
    clean.wal_checksum = true;
    match Runtime::recover(clean, Iterative::new(margin), factory, &roster) {
        Err(RecoveryError::Parse(e)) => {
            let quarantined = wal.with_extension("jsonl.quarantined").exists()
                || std::path::Path::new(&format!("{}.quarantined", wal.display())).exists();
            println!("disk-chaos: bit-rot: refused and quarantined ({e})");
            if !quarantined {
                eprintln!("FAIL: bit-rot: no quarantined segment left behind");
                failed = true;
            }
        }
        Ok((runtime, client, _)) => {
            eprintln!("FAIL: bit-rot: checksummed recovery accepted a corrupt segment");
            drop(client);
            let _ = runtime.finish();
            failed = true;
        }
        Err(other) => {
            eprintln!("FAIL: bit-rot: expected a parse refusal, got: {other}");
            failed = true;
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    if failed {
        return 1;
    }
    println!("disk-chaos holds: detectable faults crash and recover; silent rot is refused");
    0
}

/// `--disk-chaos --bench-json <path>`: measures the three durable-storage
/// costs and writes `BENCH_10.json` — WAL append+fsync throughput across
/// sync x batch settings, recovery replay rate (events/sec parsed back
/// from disk, with and without checksums), and recovery time vs uptime
/// with and without checkpoints. The exit-code check is structural, not
/// timing-based (CI machines vary): at the longest uptime, checkpointed
/// recovery must replay well under half the events of full-WAL replay.
fn bench10_json(args: &Args, path: &str) -> i32 {
    let n: usize = if args.smoke { 4_000 } else { 20_000 };
    let mut journal = Journal::new();
    for i in 0..n as u64 {
        let event = if i % 4 == 3 {
            RunEvent::JobReturned {
                job: i as u32,
                task: (i / 4) as u32,
                node: (i % 8) as u32,
                value: true,
            }
        } else {
            RunEvent::JobDispatched {
                job: i as u32,
                task: (i / 4) as u32,
                node: (i % 8) as u32,
                eta: SimTime::from_micros(i + 10),
            }
        };
        journal.record(SimTime::from_micros(i), event);
    }
    let dir = std::env::temp_dir().join(format!("smartred-bench10-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench10 dir");

    // 1) Append + fsync cost across the sync x batch grid (checksummed
    //    framing, the hardened default for new WALs).
    let mut append_rows = Vec::new();
    for sync in [false, true] {
        for batch in [1u64, 16, 64] {
            let wal = dir.join(format!("append-{sync}-{batch}.wal.jsonl"));
            let mut w = WalWriter::create(&wal, sync)
                .expect("wal create")
                .with_batch(batch)
                .with_checksums(true);
            let start = Instant::now();
            for e in journal.events() {
                w.append(e).expect("wal append");
            }
            w.commit().expect("wal commit");
            let secs = start.elapsed().as_secs_f64();
            let per_event_us = secs * 1e6 / n as f64;
            println!(
                "bench10: append sync={sync} batch={batch}: {:.2} us/event, {:.0} events/s",
                per_event_us,
                n as f64 / secs,
            );
            append_rows.push(format!(
                "    {{\"sync\": {sync}, \"batch\": {batch}, \"micros_per_event\": {:.3}, \
                 \"events_per_sec\": {:.0}}}",
                per_event_us,
                n as f64 / secs,
            ));
        }
    }

    // 2) Replay rate: parse the full segment back, plain vs checksummed.
    let mut replay_rows = Vec::new();
    for checksums in [false, true] {
        let wal = dir.join(format!("replay-{checksums}.wal.jsonl"));
        let mut w = WalWriter::create(&wal, false)
            .expect("wal create")
            .with_batch(64)
            .with_checksums(checksums);
        for e in journal.events() {
            w.append(e).expect("wal append");
        }
        w.commit().expect("wal commit");
        let text = std::fs::read_to_string(&wal).expect("read wal");
        let start = Instant::now();
        let prefix = Journal::from_jsonl_prefix(&text).expect("replay parse");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(prefix.journal.events().len(), n);
        assert!(!prefix.torn);
        println!(
            "bench10: replay checksums={checksums}: {:.0} events/s ({:.1} ms total)",
            n as f64 / secs,
            secs * 1e3,
        );
        replay_rows.push(format!(
            "    {{\"checksums\": {checksums}, \"events_per_sec\": {:.0}, \"ms_total\": {:.2}}}",
            n as f64 / secs,
            secs * 1e3,
        ));
    }

    // 3) Recovery time vs uptime: live runs of 1, 2, and 4 quiescent
    //    bursts, recovered with and without checkpoints armed. Full-WAL
    //    replay grows linearly with uptime; checkpointed recovery replays
    //    only the suffix past the last seal and stays flat-ish.
    let burst = if args.smoke { 30 } else { 80 };
    let margin = VoteMargin::new(MARGIN).unwrap();
    let seed = args.seed;
    let mut recovery_rows = Vec::new();
    let mut replayed_at_max: HashMap<bool, usize> = HashMap::new();
    for checkpoints in [false, true] {
        for bursts in [1usize, 2, 4] {
            let wal = dir.join(format!("recover-{checkpoints}-{bursts}.wal.jsonl"));
            let tasks = burst * bursts;
            let cfg = RuntimeConfig {
                workers: Some(args.workers),
                queue_cap: tasks,
                max_active: 64,
                deadline: Duration::from_secs(30),
                wal: Some(wal.clone()),
                wal_sync: false,
                checkpoint_every: checkpoints.then_some(64),
                ..RuntimeConfig::default()
            };
            let honest = move |_| {
                Box::new(FaultyWorker::new(seed, FaultProfile::default())) as Box<dyn Worker>
            };
            let runtime = Runtime::start(cfg.clone(), Iterative::new(margin), honest);
            let client = runtime.client();
            for _ in 0..bursts {
                for i in 0..burst {
                    match client.submit(Payload::Synthetic {
                        answer: i % 2 == 0,
                        work: Duration::ZERO,
                    }) {
                        SubmitOutcome::Shed => panic!("bench10 queue admits every burst"),
                        SubmitOutcome::Accepted { .. } | SubmitOutcome::Queued { .. } => {}
                    }
                }
                for _ in 0..burst {
                    client.recv().expect("bench10 verdict");
                }
                // A quiescent window between bursts, so the checkpointed
                // legs actually seal and truncate.
                std::thread::sleep(Duration::from_millis(40));
            }
            drop(client);
            let run = runtime.finish();
            assert!(!run.crashed);
            let wal_events = std::fs::read_to_string(&wal)
                .expect("read wal")
                .lines()
                .count();
            let roster: Vec<(u32, Payload)> = (0..tasks)
                .map(|i| {
                    (
                        i as u32,
                        Payload::Synthetic {
                            answer: i % 2 == 0,
                            work: Duration::ZERO,
                        },
                    )
                })
                .collect();
            let start = Instant::now();
            let (recovered, client, rec) =
                Runtime::recover(cfg, Iterative::new(margin), honest, &roster)
                    .expect("bench10 recovery");
            let recover_ms = start.elapsed().as_secs_f64() * 1e3;
            drop(client);
            let rerun = recovered.finish();
            assert!(!rerun.crashed);
            assert_eq!(rec.tasks_decided, tasks);
            if bursts == 4 {
                replayed_at_max.insert(checkpoints, rec.events_replayed);
            }
            println!(
                "bench10: recovery checkpoints={checkpoints} bursts={bursts}: {wal_events} \
                 on-disk events, {} replayed ({} in checkpoint), {recover_ms:.2} ms",
                rec.events_replayed, rec.checkpoint_events,
            );
            recovery_rows.push(format!(
                "    {{\"checkpoints\": {checkpoints}, \"bursts\": {bursts}, \"tasks\": {tasks}, \
                 \"wal_events\": {wal_events}, \"events_replayed\": {}, \"checkpoint_events\": \
                 {}, \"recover_ms\": {recover_ms:.2}}}",
                rec.events_replayed, rec.checkpoint_events,
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"bench\": 10,\n  \"name\": \"serve_bench durable-storage costs\",\n  \
         \"events\": {n},\n  \"workers\": {},\n  \"seed\": {},\n  \"append\": [\n{}\n  ],\n  \
         \"replay\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ]\n}}\n",
        args.workers,
        args.seed,
        append_rows.join(",\n"),
        replay_rows.join(",\n"),
        recovery_rows.join(",\n"),
    );
    write_bench_json(path, &json);

    let full = replayed_at_max[&false];
    let ckpt = replayed_at_max[&true];
    println!("bench10: at max uptime, full replay walks {full} events vs {ckpt} past the seal");
    if ckpt * 2 >= full {
        eprintln!(
            "FAIL: checkpointed recovery replayed {ckpt} events, not well under half of the \
             full-WAL {full}"
        );
        return 1;
    }
    0
}

fn main() {
    let args = parse_args();
    if args.dag {
        if args.chaos {
            std::process::exit(dag_chaos(&args));
        }
        let path = args
            .bench_json
            .clone()
            .unwrap_or_else(|| "BENCH_9.json".into());
        std::process::exit(bench9_json(&args, &path));
    }
    if args.disk_chaos {
        if let Some(path) = args.bench_json.clone() {
            std::process::exit(bench10_json(&args, &path));
        }
        std::process::exit(disk_chaos_mode(&args));
    }
    if args.chaos {
        std::process::exit(chaos(&args));
    }
    if args.audit_demo {
        std::process::exit(audit_demo(&args));
    }
    if let Some(path) = args.bench_json.clone() {
        if args.hedge {
            std::process::exit(bench8_json(&args, &path));
        } else if args.shards > 1 {
            bench7_json(&args, &path);
        } else {
            bench_json(&args, &path);
        }
        return;
    }
    let r = Reliability::new(1.0 - WRONG_RATE).unwrap();
    let d = VoteMargin::new(MARGIN).unwrap();
    let target = analysis::iterative::reliability(d, r);
    // Matched reliability: the smallest odd k whose predicted TR
    // reliability (Eq. 2) meets what IR's margin predicts. Progressive
    // with the same k is never less reliable, so one k matches both.
    let k = (1..=61)
        .step_by(2)
        .map(|k| KVotes::new(k).unwrap())
        .find(|&k| analysis::traditional::reliability(k, r) >= target)
        .expect("a matching k exists below 61");
    println!(
        "serve_bench: {} tasks, {} workers, {} shard(s), seed {}, r = {:.2}; IR d = {} vs \
         PR/TR k = {} (predicted R >= {:.4})",
        args.tasks,
        args.workers,
        args.shards,
        args.seed,
        r.get(),
        MARGIN,
        k.get(),
        target
    );

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let window = 64;

    let outcomes = [
        drive(
            "TR",
            Traditional::new(k),
            &formula,
            &args,
            window,
            Regime::honest(),
        ),
        drive(
            "PR",
            Progressive::new(k),
            &formula,
            &args,
            window,
            Regime::honest(),
        ),
        drive(
            "IR",
            Iterative::new(d),
            &formula,
            &args,
            window,
            Regime::honest(),
        ),
    ];

    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "strat", "tasks/s", "p50 ms", "p99 ms", "jobs/task", "reliability", "shed rate"
    );
    for o in &outcomes {
        println!(
            "{:<4} {:>10.1} {:>12.2} {:>12.2} {:>12.2} {:>12.4} {:>10.4}",
            o.name,
            o.throughput(),
            o.percentile(0.50) * 1e3,
            o.percentile(0.99) * 1e3,
            o.run.report.cost_factor(),
            o.run.report.reliability(),
            o.run.admission.shed_rate(),
        );
    }

    if let Some(path) = &args.journal {
        let ir = &outcomes[2];
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create journal directory");
            }
        }
        std::fs::write(path, ir.run.journal.to_jsonl()).expect("write journal");
        eprintln!(
            "journal: {} events -> {path} (digest {})",
            ir.run.journal.events().len(),
            ir.run.journal.digest_hex()
        );
    }

    // Figure 5 qualitatively: at matched reliability, iterative redundancy
    // is the cheapest and traditional the most expensive.
    let (tr, pr, ir) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    let mut failed = false;
    if ir.run.report.cost_factor() >= pr.run.report.cost_factor() {
        eprintln!(
            "FAIL: IR jobs/task {:.2} must beat PR {:.2}",
            ir.run.report.cost_factor(),
            pr.run.report.cost_factor()
        );
        failed = true;
    }
    if pr.run.report.cost_factor() >= tr.run.report.cost_factor() {
        eprintln!(
            "FAIL: PR jobs/task {:.2} must beat TR {:.2}",
            pr.run.report.cost_factor(),
            tr.run.report.cost_factor()
        );
        failed = true;
    }
    for o in &outcomes {
        if o.run.report.reliability() < target - 0.05 {
            eprintln!(
                "FAIL: {} achieved reliability {:.4} fell far below the {:.4} target",
                o.name,
                o.run.report.reliability(),
                target
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "cost ordering holds: IR {:.2} < PR {:.2} < TR {:.2} jobs/task",
        ir.run.report.cost_factor(),
        pr.run.report.cost_factor(),
        tr.run.report.cost_factor()
    );
}
