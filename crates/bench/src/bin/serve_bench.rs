//! Closed-loop load generator for the live runtime.
//!
//! ```text
//! serve_bench [--smoke] [--tasks N] [--workers N] [--seed N] [--journal <path>]
//! ```
//!
//! Drives the `smartred-runtime` job-serving runtime with a 30%-faulty
//! worker pool under traditional, progressive, and iterative redundancy at
//! *matched predicted reliability*, keeping a fixed window of tasks in
//! flight (closed loop). For each strategy it reports throughput, p50/p99
//! first-dispatch→verdict latency, jobs per task, achieved reliability,
//! and the shed rate — the live analogue of the paper's Figure 5 cost
//! comparison — then asserts the qualitative cost ordering
//! IR < PR < TR jobs/task and exits non-zero if it fails to hold.
//!
//! `--smoke` shrinks the run to a few hundred tasks so the whole binary
//! finishes within a CI smoke budget (~10 s). `--journal <path>` writes
//! the iterative run's event journal as JSONL (for artifact upload); every
//! run is additionally replay-checked by folding its journal back into a
//! report and requiring exact equality with the live one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use smartred_core::analysis;
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, RedundancyStrategy, Traditional};
use smartred_runtime::{
    report_from_journal, FaultProfile, FaultyWorker, Payload, Runtime, RuntimeConfig, RuntimeRun,
    SubmitOutcome,
};
use smartred_sat::{decompose, random_3sat, CnfFormula, ThreeSatConfig};

/// Worker honesty for the whole benchmark: r = 0.7 (30% colluding-wrong),
/// the paper's canonical hostile regime.
const WRONG_RATE: f64 = 0.3;
/// Iterative margin: d = 4 predicts R ≈ 0.967 at r = 0.7 (Eq. 6).
const MARGIN: usize = 4;

struct Args {
    tasks: usize,
    workers: usize,
    seed: u64,
    journal: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        tasks: 1000,
        workers: 8,
        seed: 20110620,
        journal: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires an argument", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--smoke" => args.tasks = 200,
            "--tasks" => {
                args.tasks = value(i).parse().expect("--tasks N");
                i += 1;
            }
            "--workers" => {
                args.workers = value(i).parse().expect("--workers N");
                i += 1;
            }
            "--seed" => {
                args.seed = value(i).parse().expect("--seed N");
                i += 1;
            }
            "--journal" => {
                args.journal = Some(value(i));
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag '{other}'; usage: serve_bench [--smoke] [--tasks N] \
                     [--workers N] [--seed N] [--journal <path>]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

struct Outcome {
    name: &'static str,
    run: RuntimeRun,
    elapsed: Duration,
    /// Sorted first-dispatch→verdict latencies, in journal units (seconds).
    latencies: Vec<f64>,
}

impl Outcome {
    fn throughput(&self) -> f64 {
        self.run.report.tasks_completed as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank =
            ((p * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }
}

/// Runs `tasks` 3-SAT block tasks through a fresh runtime under `strategy`,
/// keeping at most `window` in flight (closed loop, shed-retry on overload).
fn drive<S>(
    name: &'static str,
    strategy: S,
    formula: &Arc<CnfFormula>,
    args: &Args,
    window: usize,
) -> Outcome
where
    S: RedundancyStrategy<bool> + Send + Sync + 'static,
{
    let blocks = decompose(formula.num_vars(), args.tasks);
    let cfg = RuntimeConfig {
        workers: Some(args.workers),
        queue_cap: window,
        max_active: window,
        deadline: Duration::from_secs(5),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, strategy, |_| {
        Box::new(FaultyWorker::new(
            args.seed,
            FaultProfile {
                wrong_rate: WRONG_RATE,
                hang_rate: 0.0,
                think: Duration::ZERO,
            },
        ))
    });
    let client = runtime.client();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(args.tasks);
    let mut in_flight = 0usize;
    for block in blocks {
        // Closed loop: a full window waits for a verdict before the next
        // submission, so offered load tracks service capacity.
        while in_flight >= window {
            let verdict = client.recv().expect("runtime dropped a verdict");
            latencies.push(verdict.latency_units);
            in_flight -= 1;
        }
        loop {
            let outcome = client.submit(Payload::Sat {
                formula: formula.clone(),
                block,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            // Shed under a race with the drain: back off and retry.
            std::thread::sleep(Duration::from_micros(200));
        }
        in_flight += 1;
    }
    while in_flight > 0 {
        let verdict = client.recv().expect("runtime dropped a verdict");
        latencies.push(verdict.latency_units);
        in_flight -= 1;
    }
    let elapsed = started.elapsed();
    drop(client);
    let run = runtime.finish();
    assert_eq!(
        run.report.tasks_completed, args.tasks,
        "{name}: every submitted task must reach a verdict"
    );
    // Replay cross-check: the journal folds to the identical live report.
    assert_eq!(
        report_from_journal(&run.journal),
        run.report,
        "{name}: journal replay must reproduce the live report exactly"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Outcome {
        name,
        run,
        elapsed,
        latencies,
    }
}

fn main() {
    let args = parse_args();
    let r = Reliability::new(1.0 - WRONG_RATE).unwrap();
    let d = VoteMargin::new(MARGIN).unwrap();
    let target = analysis::iterative::reliability(d, r);
    // Matched reliability: the smallest odd k whose predicted TR
    // reliability (Eq. 2) meets what IR's margin predicts. Progressive
    // with the same k is never less reliable, so one k matches both.
    let k = (1..=61)
        .step_by(2)
        .map(|k| KVotes::new(k).unwrap())
        .find(|&k| analysis::traditional::reliability(k, r) >= target)
        .expect("a matching k exists below 61");
    println!(
        "serve_bench: {} tasks, {} workers, seed {}, r = {:.2}; IR d = {} vs PR/TR k = {} \
         (predicted R >= {:.4})",
        args.tasks,
        args.workers,
        args.seed,
        r.get(),
        MARGIN,
        k.get(),
        target
    );

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(args.seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let window = 64;

    let outcomes = [
        drive("TR", Traditional::new(k), &formula, &args, window),
        drive("PR", Progressive::new(k), &formula, &args, window),
        drive("IR", Iterative::new(d), &formula, &args, window),
    ];

    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "strat", "tasks/s", "p50 ms", "p99 ms", "jobs/task", "reliability", "shed rate"
    );
    for o in &outcomes {
        println!(
            "{:<4} {:>10.1} {:>12.2} {:>12.2} {:>12.2} {:>12.4} {:>10.4}",
            o.name,
            o.throughput(),
            o.percentile(0.50) * 1e3,
            o.percentile(0.99) * 1e3,
            o.run.report.cost_factor(),
            o.run.report.reliability(),
            o.run.admission.shed_rate(),
        );
    }

    if let Some(path) = &args.journal {
        let ir = &outcomes[2];
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create journal directory");
            }
        }
        std::fs::write(path, ir.run.journal.to_jsonl()).expect("write journal");
        eprintln!(
            "journal: {} events -> {path} (digest {})",
            ir.run.journal.events().len(),
            ir.run.journal.digest_hex()
        );
    }

    // Figure 5 qualitatively: at matched reliability, iterative redundancy
    // is the cheapest and traditional the most expensive.
    let (tr, pr, ir) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    let mut failed = false;
    if ir.run.report.cost_factor() >= pr.run.report.cost_factor() {
        eprintln!(
            "FAIL: IR jobs/task {:.2} must beat PR {:.2}",
            ir.run.report.cost_factor(),
            pr.run.report.cost_factor()
        );
        failed = true;
    }
    if pr.run.report.cost_factor() >= tr.run.report.cost_factor() {
        eprintln!(
            "FAIL: PR jobs/task {:.2} must beat TR {:.2}",
            pr.run.report.cost_factor(),
            tr.run.report.cost_factor()
        );
        failed = true;
    }
    for o in &outcomes {
        if o.run.report.reliability() < target - 0.05 {
            eprintln!(
                "FAIL: {} achieved reliability {:.4} fell far below the {:.4} target",
                o.name,
                o.run.report.reliability(),
                target
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "cost ordering holds: IR {:.2} < PR {:.2} < TR {:.2} jobs/task",
        ir.run.report.cost_factor(),
        pr.run.report.cost_factor(),
        tr.run.report.cost_factor()
    );
}
