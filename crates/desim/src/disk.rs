//! Disk abstraction and deterministic fault injection for the WAL.
//!
//! The write-ahead log trusts its storage twice over: every byte written
//! is assumed durable once `sync_data` returns, and every byte read back
//! at recovery is assumed to be the byte that was written. Real disks
//! break both assumptions — short writes on a full volume, `fsync`
//! failures that drop dirty pages (the "fsyncgate" class of bugs), torn
//! sectors from power loss, and silent single-bit rot. This module puts a
//! seam under the WAL file handle so those failures can be injected
//! deterministically: [`RealDisk`] is a transparent passthrough, and
//! [`FaultyDisk`] executes a seeded [`DiskFaultPlan`] that makes the k-th
//! write or sync fail the same way on every run.
//!
//! Determinism matters more than realism here: the crash×disk-fault test
//! matrix replays the exact same fault schedule under 1 and 8 worker
//! threads and 1 and 4 shards, so every injected failure is a pure
//! function of the plan's seed and the operation count — no wall clock,
//! no global RNG.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The file operations the WAL writer needs, virtualized so a fault
/// injector can sit between the writer and the OS.
pub trait Disk: Debug + Send {
    /// Writes the whole buffer (one serialized record + newline).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes userspace buffers to the OS.
    fn flush(&mut self) -> io::Result<()>;
    /// Forces written data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Seeks to the end of the file, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// A transparent [`Disk`] over a real [`File`] — the production path.
#[derive(Debug)]
pub struct RealDisk(File);

impl RealDisk {
    /// Wraps an open file handle.
    pub fn new(file: File) -> Self {
        Self(file)
    }
}

impl Disk for RealDisk {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
}

/// A deterministic schedule of storage failures, applied by
/// [`FaultyDisk`]. Operation indices are 1-based counts of calls on the
/// wrapped handle; `None` disables that fault. All randomness (short-write
/// lengths, flipped-bit positions) derives from `seed` via splitmix64, so
/// a plan replays identically across runs, thread counts, and platforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Seeds the short-write length and bit-flip position draws.
    pub seed: u64,
    /// The k-th `sync_data` call fails with an I/O error. The data may or
    /// may not be on stable storage — exactly the ambiguity that makes a
    /// failed fsync unrecoverable without rereading the file (fsyncgate).
    pub fail_fsync_at: Option<u64>,
    /// The k-th write persists only a seeded prefix of its buffer and
    /// returns `WriteZero`. The disk itself stays alive; it is the
    /// writer's job to refuse further appends.
    pub short_write_at: Option<u64>,
    /// After `k` completed writes, the next write persists a seeded
    /// partial prefix and the disk goes permanently dead — every later
    /// operation errors. Models power loss mid-append.
    pub crash_after_writes: Option<u64>,
    /// After the k-th write completes, one seeded bit somewhere in the
    /// file is flipped in place — silent corruption discovered only at
    /// read-back.
    pub flip_bit_after: Option<u64>,
}

impl DiskFaultPlan {
    /// A plan that injects nothing — useful as a matrix baseline.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected disk fault: {kind}"))
}

/// A [`Disk`] that executes a [`DiskFaultPlan`] over a real file. The
/// file is opened read+write so the bit-flip fault can corrupt written
/// bytes in place.
#[derive(Debug)]
pub struct FaultyDisk {
    file: File,
    plan: DiskFaultPlan,
    draws: u64,
    writes: u64,
    syncs: u64,
    dead: bool,
}

impl FaultyDisk {
    /// Creates (truncating) the file at `path` and arms the plan.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open error.
    pub fn create(path: &Path, plan: DiskFaultPlan) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            plan,
            draws: plan.seed,
            writes: 0,
            syncs: 0,
            dead: false,
        })
    }

    fn check_dead(&self) -> io::Result<()> {
        if self.dead {
            return Err(injected("disk is dead after write crash"));
        }
        Ok(())
    }

    /// Persists a seeded strict prefix of `buf` (possibly empty, never the
    /// whole buffer).
    fn persist_prefix(&mut self, buf: &[u8]) -> io::Result<()> {
        let keep = (splitmix64(&mut self.draws) as usize) % buf.len().max(1);
        self.file.write_all(&buf[..keep])?;
        self.file.flush()
    }

    fn flip_one_bit(&mut self) -> io::Result<()> {
        let len = self.file.seek(SeekFrom::End(0))?;
        if len == 0 {
            return Ok(());
        }
        let bit = splitmix64(&mut self.draws) % (len * 8);
        let (byte_at, mask) = (bit / 8, 1u8 << (bit % 8));
        let mut byte = [0u8];
        self.file.seek(SeekFrom::Start(byte_at))?;
        self.file.read_exact(&mut byte)?;
        self.file.seek(SeekFrom::Start(byte_at))?;
        self.file.write_all(&[byte[0] ^ mask])?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl Disk for FaultyDisk {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.check_dead()?;
        self.writes += 1;
        if self
            .plan
            .crash_after_writes
            .is_some_and(|k| self.writes > k)
        {
            // Power loss mid-append: a torn partial record lands on disk
            // and the device never comes back for this process.
            self.persist_prefix(buf)?;
            self.dead = true;
            return Err(injected("write crash (power loss mid-append)"));
        }
        if self.plan.short_write_at == Some(self.writes) {
            self.persist_prefix(buf)?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected disk fault: short write",
            ));
        }
        self.file.write_all(buf)?;
        if self.plan.flip_bit_after == Some(self.writes) {
            self.flip_one_bit()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.check_dead()?;
        self.file.flush()
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.check_dead()?;
        self.syncs += 1;
        if self.plan.fail_fsync_at == Some(self.syncs) {
            // The kernel may or may not have persisted the dirty pages —
            // the caller must treat this writer as unusable (fsyncgate).
            return Err(injected("sync_data failure"));
        }
        self.file.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.check_dead()?;
        self.file.set_len(len)
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        self.check_dead()?;
        self.file.seek(SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smartred-disk-{}-{name}", std::process::id()))
    }

    #[test]
    fn real_disk_round_trips() {
        let path = tmp("real");
        let mut disk = RealDisk::new(File::create(&path).unwrap());
        disk.write_all(b"hello\n").unwrap();
        disk.flush().unwrap();
        disk.sync_data().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello\n");
        assert_eq!(disk.seek_end().unwrap(), 6);
        disk.set_len(0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_fault_fires_exactly_once_at_the_scheduled_sync() {
        let path = tmp("fsync");
        let plan = DiskFaultPlan {
            seed: 7,
            fail_fsync_at: Some(2),
            ..DiskFaultPlan::default()
        };
        let mut disk = FaultyDisk::create(&path, plan).unwrap();
        disk.write_all(b"a\n").unwrap();
        disk.sync_data().unwrap();
        disk.write_all(b"b\n").unwrap();
        assert!(disk.sync_data().is_err(), "second sync must fail");
        // The disk itself recovers; refusing further work is the
        // writer's responsibility.
        disk.sync_data().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_crash_persists_a_partial_record_then_kills_the_disk() {
        let path = tmp("crash");
        let plan = DiskFaultPlan {
            seed: 11,
            crash_after_writes: Some(1),
            ..DiskFaultPlan::default()
        };
        let mut disk = FaultyDisk::create(&path, plan).unwrap();
        disk.write_all(b"first-record\n").unwrap();
        let err = disk.write_all(b"second-record\n").unwrap_err();
        assert!(err.to_string().contains("write crash"), "{err}");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.starts_with(b"first-record\n"));
        assert!(
            on_disk.len() < b"first-record\nsecond-record\n".len(),
            "second record must be torn"
        );
        // Dead means dead: every later operation errors.
        assert!(disk.write_all(b"x").is_err());
        assert!(disk.sync_data().is_err());
        assert!(disk.flush().is_err());
        assert!(disk.seek_end().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_persists_a_strict_prefix() {
        let path = tmp("short");
        let plan = DiskFaultPlan {
            seed: 3,
            short_write_at: Some(2),
            ..DiskFaultPlan::default()
        };
        let mut disk = FaultyDisk::create(&path, plan).unwrap();
        disk.write_all(b"intact\n").unwrap();
        let err = disk.write_all(b"truncated-record\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.starts_with(b"intact\n"));
        assert!(on_disk.len() < b"intact\ntruncated-record\n".len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_deterministically() {
        let reads: Vec<Vec<u8>> = (0..2)
            .map(|i| {
                let path = tmp(&format!("flip{i}"));
                let plan = DiskFaultPlan {
                    seed: 42,
                    flip_bit_after: Some(2),
                    ..DiskFaultPlan::default()
                };
                let mut disk = FaultyDisk::create(&path, plan).unwrap();
                disk.write_all(b"record-one\n").unwrap();
                disk.write_all(b"record-two\n").unwrap();
                disk.write_all(b"record-three\n").unwrap();
                let bytes = std::fs::read(&path).unwrap();
                std::fs::remove_file(&path).ok();
                bytes
            })
            .collect();
        assert_eq!(reads[0], reads[1], "same seed, same flipped bit");
        let clean = b"record-one\nrecord-two\nrecord-three\n";
        assert_eq!(reads[0].len(), clean.len());
        let flipped_bits: u32 = reads[0]
            .iter()
            .zip(clean.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1, "exactly one bit differs");
        // The flip lands in already-written bytes, and appends after the
        // flip are untouched.
        assert!(reads[0].ends_with(b"record-three\n"));
    }
}
