//! The discrete-event executive.
//!
//! A [`Simulator`] owns a time-ordered event queue; each event is a boxed
//! closure that mutates the model `M` and may schedule further events.
//! Events at equal timestamps fire in insertion order (a strictly monotone
//! sequence number breaks ties), so runs are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::journal::{Journal, RunEvent};
use crate::time::{SimDuration, SimTime};

/// An event handler: mutates the model and schedules follow-up events.
pub type EventFn<M> = Box<dyn FnOnce(&mut M, &mut Simulator<M>)>;

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: EventFn<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events executed.
    pub events: u64,
    /// Simulated time of the last executed event.
    pub end_time: SimTime,
}

/// A deterministic discrete-event simulator over a model `M`.
///
/// # Examples
///
/// ```
/// use smartred_desim::engine::Simulator;
/// use smartred_desim::time::SimDuration;
///
/// let mut sim: Simulator<Vec<u32>> = Simulator::new();
/// sim.schedule_in(SimDuration::from_units(2.0), |log, _| log.push(2));
/// sim.schedule_in(SimDuration::from_units(1.0), |log, sim| {
///     log.push(1);
///     sim.schedule_in(SimDuration::from_units(0.5), |log, _| log.push(15));
/// });
/// let mut log = Vec::new();
/// let stats = sim.run(&mut log);
/// assert_eq!(log, vec![1, 15, 2]);
/// assert_eq!(stats.events, 3);
/// ```
pub struct Simulator<M> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
    executed: u64,
    journal: Journal,
}

impl<M> std::fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<M> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulator<M> {
    /// Creates a simulator at time zero with an empty queue. Journaling is
    /// off by default; see [`Simulator::enable_journal`].
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            executed: 0,
            journal: Journal::disabled(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Turns on event journaling: subsequent [`Simulator::emit`] calls are
    /// recorded instead of discarded.
    pub fn enable_journal(&mut self) {
        if !self.journal.is_enabled() {
            self.journal = Journal::new();
        }
    }

    /// Records `event` in the journal at the current simulated time.
    /// A single predictable branch when journaling is disabled.
    pub fn emit(&mut self, event: RunEvent) {
        self.journal.record(self.now, event);
    }

    /// The journal recorded so far (empty and disabled unless
    /// [`Simulator::enable_journal`] was called).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Takes the journal out of the simulator, leaving a disabled one.
    pub fn take_journal(&mut self) -> Journal {
        std::mem::replace(&mut self.journal, Journal::disabled())
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — discrete-event time is monotone.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut M, &mut Simulator<M>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            event: Box::new(event),
        });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut M, &mut Simulator<M>) + 'static,
    {
        self.schedule_at(self.now + delay, event);
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, model: &mut M) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now);
        self.now = scheduled.at;
        self.executed += 1;
        (scheduled.event)(model, self);
        true
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self, model: &mut M) -> RunStats {
        while self.step(model) {}
        RunStats {
            events: self.executed,
            end_time: self.now,
        }
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `deadline`; events at exactly `deadline` are executed.
    pub fn run_until(&mut self, model: &mut M, deadline: SimTime) -> RunStats {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step(model);
        }
        // Advance the clock to the deadline even if nothing fired there.
        if self.now < deadline {
            self.now = deadline;
        }
        RunStats {
            events: self.executed,
            end_time: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        sim.schedule_at(SimTime::from_units(3.0), |log, _| log.push(3));
        sim.schedule_at(SimTime::from_units(1.0), |log, _| log.push(1));
        sim.schedule_at(SimTime::from_units(2.0), |log, _| log.push(2));
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let t = SimTime::from_units(1.0);
        for i in 0..50 {
            sim.schedule_at(t, move |log, _| log.push(i));
        }
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_recursively() {
        // A chain of events, each scheduling the next.
        fn chain(count: u32, model: &mut u32, sim: &mut Simulator<u32>) {
            *model += 1;
            if count > 1 {
                sim.schedule_in(SimDuration::from_micros(1), move |m, s| {
                    chain(count - 1, m, s)
                });
            }
        }
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_in(SimDuration::ZERO, |m, s| chain(10, m, s));
        let mut fired = 0u32;
        let stats = sim.run(&mut fired);
        assert_eq!(fired, 10);
        assert_eq!(stats.events, 10);
        assert_eq!(stats.end_time, SimTime::from_micros(9));
    }

    #[test]
    fn clock_tracks_fired_events() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_units(5.5), |_, sim| {
            assert_eq!(sim.now(), SimTime::from_units(5.5));
        });
        sim.run(&mut ());
        assert_eq!(sim.now(), SimTime::from_units(5.5));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        sim.schedule_at(SimTime::from_units(1.0), |log, _| log.push(1));
        sim.schedule_at(SimTime::from_units(2.0), |log, _| log.push(2));
        sim.schedule_at(SimTime::from_units(3.0), |log, _| log.push(3));
        let mut log = Vec::new();
        sim.run_until(&mut log, SimTime::from_units(2.0));
        assert_eq!(log, vec![1, 2]);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_units(2.0));
        // The rest still runs afterwards.
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_advances_idle_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.run_until(&mut (), SimTime::from_units(4.0));
        assert_eq!(sim.now(), SimTime::from_units(4.0));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_units(2.0), |_, sim| {
            sim.schedule_at(SimTime::from_units(1.0), |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(!sim.step(&mut ()));
        assert_eq!(sim.executed(), 0);
    }

    #[test]
    fn emit_is_discarded_until_journal_enabled() {
        use crate::journal::EventKind;

        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_units(1.0), |_, sim| {
            sim.emit(RunEvent::NodeJoined { node: 0 });
        });
        sim.run(&mut ());
        assert!(sim.journal().is_empty());

        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_journal();
        sim.schedule_at(SimTime::from_units(1.0), |_, sim| {
            sim.emit(RunEvent::NodeJoined { node: 0 });
        });
        sim.run(&mut ());
        sim.emit(RunEvent::RunEnded);
        assert_eq!(sim.journal().len(), 2);
        assert_eq!(sim.journal().events()[0].at, SimTime::from_units(1.0));
        let journal = sim.take_journal();
        assert_eq!(journal.count(EventKind::RunEnded), 1);
        assert!(sim.journal().is_empty());
        assert!(!sim.journal().is_enabled());
    }

    #[test]
    fn debug_output_is_informative() {
        let sim: Simulator<()> = Simulator::new();
        let s = format!("{sim:?}");
        assert!(s.contains("Simulator"));
        assert!(s.contains("pending"));
    }
}
