//! Network and resource model: per-node link budgets and transfer charging.
//!
//! The base DCA model treats communication as free: a dispatched replica
//! starts service immediately. Real distributed pipelines move input data
//! first, and replication's diversity/parallelism trade-off is governed by
//! service *and* data-movement time. This module adds that axis to the DES
//! engine as an event class: a [`NetworkModel`] charges each job a
//! deterministic transfer delay (link latency plus payload size over link
//! bandwidth) before its service may begin, journaling a
//! [`RunEvent::TransferStarted`]/[`RunEvent::TransferCompleted`] pair per
//! transfer.
//!
//! Transfer completion times are exact integer microunits (ceiling
//! division), so event ordering — and therefore journals and digests —
//! stays bit-deterministic.
//!
//! ## Lifecycle
//!
//! ```text
//! begin(job, task, node, bytes, then)
//!   ├─ emit TransferStarted { xfer, job, task, node, bytes, eta }   at t
//!   └─ schedule at eta = t + latency + ceil(bytes / bandwidth):
//!        ├─ emit TransferCompleted { xfer, job, task, node }
//!        └─ run `then` (service dispatch continuation)
//! ```

use crate::engine::Simulator;
use crate::journal::RunEvent;
use crate::time::{SimDuration, SimTime, MICROS_PER_UNIT};

/// One node's link budget: how fast payload bytes reach it.
///
/// # Examples
///
/// ```
/// use smartred_desim::network::LinkSpec;
/// use smartred_desim::time::SimDuration;
///
/// // 10 kB per time unit, 0.05 units of latency.
/// let link = LinkSpec::new(10_000, SimDuration::from_units(0.05));
/// // 25 kB ⇒ 0.05 + 2.5 = 2.55 units.
/// assert_eq!(link.transfer_duration(25_000), SimDuration::from_units(2.55));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Payload bytes the link moves per simulated time unit.
    pub bandwidth: u64,
    /// Fixed per-transfer setup latency, paid even for empty payloads.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Creates a link budget.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero — a link that moves nothing would
    /// stall the simulation forever.
    pub fn new(bandwidth: u64, latency: SimDuration) -> Self {
        assert!(bandwidth > 0, "link bandwidth must be positive");
        Self { bandwidth, latency }
    }

    /// The exact time to move `bytes` over this link: latency plus the
    /// serialization delay, rounded *up* to the next microunit so a
    /// transfer never completes early.
    pub fn transfer_duration(&self, bytes: u64) -> SimDuration {
        let micros = bytes
            .saturating_mul(MICROS_PER_UNIT)
            .div_ceil(self.bandwidth);
        self.latency + SimDuration::from_micros(micros)
    }
}

/// The network event class: charges transfers and journals their lifecycle.
///
/// Owns a dense transfer-id counter so every
/// [`RunEvent::TransferStarted`]/[`RunEvent::TransferCompleted`] pair is
/// correlated by `xfer` in start order, plus per-node link overrides on top
/// of a uniform default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    default: LinkSpec,
    /// Sparse per-node overrides, sorted by node id for O(log n) lookup.
    overrides: Vec<(u32, LinkSpec)>,
    next_xfer: u32,
    transfers: u64,
    bytes_moved: u64,
}

impl NetworkModel {
    /// A network where every node shares the same link budget.
    pub fn uniform(link: LinkSpec) -> Self {
        Self {
            default: link,
            overrides: Vec::new(),
            next_xfer: 0,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// Overrides one node's link budget (e.g. a slow edge node). Later
    /// overrides for the same node replace earlier ones.
    pub fn with_node_link(mut self, node: u32, link: LinkSpec) -> Self {
        match self.overrides.binary_search_by_key(&node, |&(n, _)| n) {
            Ok(i) => self.overrides[i].1 = link,
            Err(i) => self.overrides.insert(i, (node, link)),
        }
        self
    }

    /// The link budget `node` transfers over.
    pub fn link(&self, node: u32) -> LinkSpec {
        match self.overrides.binary_search_by_key(&node, |&(n, _)| n) {
            Ok(i) => self.overrides[i].1,
            Err(_) => self.default,
        }
    }

    /// The exact transfer delay for moving `bytes` to `node`.
    pub fn transfer_duration(&self, node: u32, bytes: u64) -> SimDuration {
        self.link(node).transfer_duration(bytes)
    }

    /// Transfers started so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total payload bytes charged so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Starts moving `job`'s input payload to `node`: journals
    /// [`RunEvent::TransferStarted`] now and schedules a deterministic
    /// completion event at `eta` that journals
    /// [`RunEvent::TransferCompleted`] and then runs `then` — the service
    /// dispatch continuation. Returns `eta`.
    pub fn begin<M, F>(
        &mut self,
        sim: &mut Simulator<M>,
        job: u32,
        task: u32,
        node: u32,
        bytes: u64,
        then: F,
    ) -> SimTime
    where
        F: FnOnce(&mut M, &mut Simulator<M>) + 'static,
    {
        let xfer = self.next_xfer;
        self.next_xfer += 1;
        self.transfers += 1;
        self.bytes_moved += bytes;
        let eta = sim.now() + self.transfer_duration(node, bytes);
        sim.emit(RunEvent::TransferStarted {
            xfer,
            job,
            task,
            node,
            bytes,
            eta,
        });
        sim.schedule_at(eta, move |model, sim| {
            sim.emit(RunEvent::TransferCompleted {
                xfer,
                job,
                task,
                node,
            });
            then(model, sim);
        });
        eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;

    fn link(bw: u64, lat: f64) -> LinkSpec {
        LinkSpec::new(bw, SimDuration::from_units(lat))
    }

    #[test]
    fn transfer_duration_rounds_up() {
        // 3 bytes at 7 bytes/unit: 3_000_000 / 7 = 428571.42… → 428572.
        let l = link(7, 0.0);
        assert_eq!(l.transfer_duration(3), SimDuration::from_micros(428_572));
        // Exact divisions don't round.
        assert_eq!(
            link(2, 0.0).transfer_duration(4),
            SimDuration::from_units(2.0)
        );
        // Empty payloads still pay latency.
        assert_eq!(
            link(10, 0.25).transfer_duration(0),
            SimDuration::from_units(0.25)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        LinkSpec::new(0, SimDuration::ZERO);
    }

    #[test]
    fn node_overrides_shadow_the_default() {
        let net = NetworkModel::uniform(link(100, 0.0))
            .with_node_link(3, link(10, 0.5))
            .with_node_link(3, link(20, 0.5));
        assert_eq!(net.link(0), link(100, 0.0));
        assert_eq!(net.link(3), link(20, 0.5));
        assert_eq!(net.transfer_duration(3, 40), SimDuration::from_units(2.5));
    }

    #[test]
    fn begin_journals_started_and_completed_pair() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        sim.enable_journal();
        let mut net = NetworkModel::uniform(link(10, 0.1));
        let eta = net.begin(&mut sim, 7, 2, 4, 30, |done, sim| {
            done.push(sim.now().as_micros() as u32);
        });
        assert_eq!(eta, SimTime::from_units(3.1));
        assert_eq!(net.transfers(), 1);
        assert_eq!(net.bytes_moved(), 30);

        let mut done = Vec::new();
        sim.run(&mut done);
        // The continuation ran exactly at the completion time.
        assert_eq!(done, vec![3_100_000]);

        let j = sim.take_journal();
        assert_eq!(j.count(EventKind::TransferStarted), 1);
        assert_eq!(j.count(EventKind::TransferCompleted), 1);
        let started = &j.events()[0];
        assert_eq!(started.at, SimTime::ZERO);
        assert!(matches!(
            started.event,
            RunEvent::TransferStarted { xfer: 0, job: 7, task: 2, node: 4, bytes: 30, eta }
                if eta == SimTime::from_units(3.1)
        ));
        let completed = &j.events()[1];
        assert_eq!(completed.at, SimTime::from_units(3.1));
        assert!(matches!(
            completed.event,
            RunEvent::TransferCompleted {
                xfer: 0,
                job: 7,
                task: 2,
                node: 4
            }
        ));
    }

    #[test]
    fn transfer_ids_are_dense_in_start_order() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_journal();
        let mut net = NetworkModel::uniform(link(1, 0.0));
        for job in 0..3 {
            net.begin(&mut sim, job, 0, job, u64::from(job) + 1, |_, _| {});
        }
        sim.run(&mut ());
        let j = sim.take_journal();
        let started: Vec<u32> = j
            .events()
            .iter()
            .filter_map(|e| match e.event {
                RunEvent::TransferStarted { xfer, .. } => Some(xfer),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![0, 1, 2]);
    }
}
