//! Simulated time as fixed-point integers.
//!
//! The paper's simulations measure everything in abstract "time units" with
//! job durations uniform in `[0.5, 1.5]`. Representing instants as integer
//! *microunits* (10⁻⁶ of a time unit) keeps event ordering exact — no
//! float-comparison hazards in the event queue — while being far finer than
//! any quantity the experiments report.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microunits in one simulated time unit.
pub const MICROS_PER_UNIT: u64 = 1_000_000;

/// A span of simulated time.
///
/// # Examples
///
/// ```
/// use smartred_desim::time::SimDuration;
///
/// let d = SimDuration::from_units(1.5);
/// assert_eq!(d.as_micros(), 1_500_000);
/// assert!((d.as_units() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microunits.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a duration from fractional time units, rounding to the
    /// nearest microunit.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    pub fn from_units(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "duration must be finite and non-negative, got {units}"
        );
        Self((units * MICROS_PER_UNIT as f64).round() as u64)
    }

    /// Returns the duration in microunits.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional time units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / MICROS_PER_UNIT as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}u", self.as_units())
    }
}

/// An instant in simulated time, measured from the start of the run.
///
/// # Examples
///
/// ```
/// use smartred_desim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_units(2.0);
/// assert!((t.as_units() - 2.0).abs() < 1e-12);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_units(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from integer microunits since the start.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates an instant from fractional time units since the start.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    pub fn from_units(units: f64) -> Self {
        Self(SimDuration::from_units(units).as_micros())
    }

    /// Returns the instant in microunits since the start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant in fractional time units since the start.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / MICROS_PER_UNIT as f64
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` — elapsed time in a monotone
    /// simulation can never be negative, so that is a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}u", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_units_micros() {
        let d = SimDuration::from_units(0.5);
        assert_eq!(d.as_micros(), 500_000);
        assert_eq!(SimDuration::from_micros(1_500_000).as_units(), 1.5);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_units(1.0) + SimDuration::from_units(0.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert_eq!(t - SimTime::from_units(1.0), SimDuration::from_units(0.25));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(SimTime::from_micros(1) > SimTime::ZERO);
        assert!(SimTime::from_units(0.1) < SimTime::from_units(0.100001));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_elapsed_panics() {
        let _ = SimTime::ZERO - SimTime::from_units(1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        SimDuration::from_units(-0.5);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(SimTime::from_units(1.5).to_string(), "t=1.500000u");
        assert_eq!(SimDuration::from_units(0.5).to_string(), "0.500000u");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_units(0.5);
        t += SimDuration::from_units(0.5);
        assert_eq!(t, SimTime::from_units(1.0));
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_micros(3);
        assert_eq!(d.as_micros(), 3);
    }
}
