//! Structured run journal: a typed, allocation-light event log of one
//! simulation run.
//!
//! The paper's claims (§4–§5) are about *trajectories* — how many jobs each
//! technique deploys, when waves start, when a verdict fires — not just
//! end-of-run aggregates. A [`Journal`] records every significant state
//! transition of a run as a [`RunEvent`], stamped with the simulated time
//! and a strictly monotone sequence number, so tests can assert behavior
//! (ordering, causality, invariants) rather than only totals.
//!
//! The journal is deliberately simulator-agnostic: the DCA model and the
//! volunteer-computing server share one event vocabulary, which is what
//! makes differential trajectory comparisons between the two codepaths
//! possible.
//!
//! Three serialization-adjacent guarantees back the test harness:
//!
//! * recording is **deterministic**: the same seeded run produces the same
//!   event stream, bit for bit;
//! * [`Journal::digest`] collapses the stream into one 64-bit FNV-1a hash,
//!   so golden tests can pin a whole trajectory in a single constant;
//! * [`Journal::to_jsonl`] / [`Journal::from_jsonl`] round-trip the stream
//!   losslessly for capture, replay, and offline analysis.
//!
//! See the [`assert`] submodule for the trace-assertion DSL built on top.
//!
//! # Examples
//!
//! ```
//! use smartred_desim::journal::{EventKind, Journal, RunEvent};
//! use smartred_desim::time::SimTime;
//!
//! let mut journal = Journal::new();
//! journal.record(SimTime::from_units(0.5), RunEvent::WaveOpened { task: 0, wave: 1, jobs: 3 });
//! journal.record(
//!     SimTime::from_units(0.5),
//!     RunEvent::JobDispatched { job: 0, task: 0, node: 7, eta: SimTime::from_units(1.5) },
//! );
//! assert_eq!(journal.len(), 2);
//! assert_eq!(journal.count(EventKind::JobDispatched), 1);
//! let restored = Journal::from_jsonl(&journal.to_jsonl()).unwrap();
//! assert_eq!(restored.digest(), journal.digest());
//! ```

use std::fmt;

use crate::time::SimTime;

/// Why a node left the scheduler's reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepartureReason {
    /// The volunteer left of its own accord (churn).
    Churn,
    /// A fault-plan crash removed the node.
    Crash,
    /// The server's discipline permanently blacklisted the node.
    Blacklist,
}

impl DepartureReason {
    fn name(self) -> &'static str {
        match self {
            DepartureReason::Churn => "churn",
            DepartureReason::Crash => "crash",
            DepartureReason::Blacklist => "blacklist",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "churn" => DepartureReason::Churn,
            "crash" => DepartureReason::Crash,
            "blacklist" => DepartureReason::Blacklist,
            _ => return None,
        })
    }
}

/// Which class of scheduled fault-plan event was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A node crash.
    Crash,
    /// A hang window on one node.
    Hang,
    /// A straggler (slowdown) window on one node.
    Straggler,
    /// A collusion burst across a pool fraction.
    Collusion,
    /// A network blackout silencing every node.
    Blackout,
    /// An adaptive cartel formed: colluding nodes coordinate per-task lies
    /// at a throttled rate and go dormant when a member is caught.
    Cartel,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Hang => "hang",
            FaultKind::Straggler => "straggler",
            FaultKind::Collusion => "collusion",
            FaultKind::Blackout => "blackout",
            FaultKind::Cartel => "cartel",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "crash" => FaultKind::Crash,
            "hang" => FaultKind::Hang,
            "straggler" => FaultKind::Straggler,
            "collusion" => FaultKind::Collusion,
            "blackout" => FaultKind::Blackout,
            "cartel" => FaultKind::Cartel,
            _ => return None,
        })
    }
}

/// One structured event in a run's trajectory.
///
/// Identifiers are the simulators' stable dense indices: `task` is the task
/// (or workunit) index, `node` the node (or host) index, `job` the
/// dispatch-order job index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunEvent {
    /// A job was handed to a node. `eta` is the time at which the server
    /// will hear back: the job's completion time, or the timeout/deadline
    /// if the node hangs — so `eta - now` is the node-busy reservation.
    JobDispatched {
        /// Dispatch-order job index.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// Node executing the job.
        node: u32,
        /// Scheduled resolution time.
        eta: SimTime,
    },
    /// A job returned a result before the timeout.
    JobReturned {
        /// Dispatch-order job index.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// Node that executed the job.
        node: u32,
        /// The returned vote (in the DCA model `true` = correct value).
        value: bool,
    },
    /// A job missed the server timeout/deadline (hang, blackout, outage,
    /// straggler overrun, or mid-job node departure).
    JobTimedOut {
        /// Dispatch-order job index.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// Node that held the job.
        node: u32,
    },
    /// A timed-out job was hidden from the vote and scheduled for a
    /// backoff-delayed re-deployment (`attempt` is 1-based).
    JobRetried {
        /// Task being retried.
        task: u32,
        /// Retry attempt number, starting at 1.
        attempt: u32,
    },
    /// A task's strategy opened deployment wave `wave` of `jobs` jobs.
    WaveOpened {
        /// Task index.
        task: u32,
        /// Wave number, starting at 1.
        wave: u32,
        /// Jobs deployed in this wave.
        jobs: u32,
    },
    /// Every job of the task's current wave has resolved (result, timeout,
    /// or abandonment); the strategy decides next.
    WaveClosed {
        /// Task index.
        task: u32,
        /// Wave number that just drained.
        wave: u32,
    },
    /// A vote landed in the task's tally.
    VoteTallied {
        /// Task index.
        task: u32,
        /// The vote just recorded.
        value: bool,
        /// Votes for the current leader after this vote.
        leader_count: u32,
        /// Votes for the runner-up after this vote.
        runner_up: u32,
    },
    /// The discipline layer pulled a node from the scheduler for a while.
    NodeQuarantined {
        /// Node index.
        node: u32,
    },
    /// A quarantined node rejoined the scheduler.
    NodeReleased {
        /// Node index.
        node: u32,
    },
    /// A node joined the pool mid-run (churn arrival).
    NodeJoined {
        /// Node index.
        node: u32,
    },
    /// A node left the pool (or the scheduler, permanently).
    NodeDeparted {
        /// Node index.
        node: u32,
        /// Why it left.
        reason: DepartureReason,
    },
    /// A regional outage started.
    OutageStarted {
        /// Region index.
        region: u32,
    },
    /// A scheduled fault-plan event was injected.
    FaultInjected {
        /// Which fault class fired.
        kind: FaultKind,
    },
    /// A task reached a verdict. Firm verdicts carry confidence `1.0`;
    /// degraded verdicts (vote leader accepted at the job cap or at pool
    /// starvation) carry their Bayesian confidence `q(r, a, b)`.
    VerdictReached {
        /// Task index.
        task: u32,
        /// The accepted value.
        value: bool,
        /// Whether the verdict was accepted degraded.
        degraded: bool,
        /// Confidence in the verdict.
        confidence: f64,
    },
    /// A task hit its job cap with no verdict (and no degraded acceptance).
    TaskCapped {
        /// Task index.
        task: u32,
    },
    /// A worker thread died (panicked) while executing a job — live-runtime
    /// supervision vocabulary.
    WorkerCrashed {
        /// Worker (node) index whose thread crashed.
        node: u32,
        /// The job it was executing.
        job: u32,
        /// Task the job belongs to.
        task: u32,
    },
    /// Supervision brought a crashed or hung worker back into service with
    /// a fresh executor.
    WorkerRestarted {
        /// Worker (node) index restarted.
        node: u32,
        /// Restart count for this worker slot, starting at 1.
        incarnation: u32,
    },
    /// A task was quarantined as *poison* after repeatedly killing the
    /// workers executing it (distinct from node-level strikes).
    TaskPoisoned {
        /// Task index.
        task: u32,
        /// Worker crashes the task caused before quarantine.
        crashes: u32,
    },
    /// A reply from a superseded replica epoch arrived and was discarded
    /// instead of being tallied (late answer after reissue or worker
    /// replacement).
    StaleReplyDropped {
        /// The job whose stale reply was dropped.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// The task's current epoch that outranked the reply.
        epoch: u32,
    },
    /// A task's replica epoch advanced: outstanding replicas issued before
    /// this point are invalidated and any late replies from them will be
    /// rejected.
    EpochAdvanced {
        /// Task index.
        task: u32,
        /// The new epoch.
        epoch: u32,
    },
    /// A straggling job outlived the online latency-quantile threshold and
    /// a hedge twin was launched: a duplicate of the same logical replica
    /// on another worker. The first copy to report supplies the replica's
    /// vote; hedge twins never touch the wave accounting or the job cap.
    HedgeLaunched {
        /// The hedge twin's own job index.
        job: u32,
        /// Task the hedged replica belongs to.
        task: u32,
        /// The straggling job the twin duplicates.
        origin: u32,
        /// The task's replica epoch at launch; a check armed before an
        /// epoch bump must not fire after it.
        epoch: u32,
    },
    /// A hedge twin beat its straggling origin: the twin's result supplied
    /// the replica's vote (journalled as the origin job's return) and the
    /// origin was discarded.
    HedgeWon {
        /// The winning hedge twin's job index.
        job: u32,
        /// Task the hedged replica belongs to.
        task: u32,
    },
    /// A hedge twin's work was discarded: its origin reported first (or
    /// the twin timed out), so the duplicate bought nothing this time.
    HedgeWasted {
        /// The wasted hedge twin's job index.
        job: u32,
        /// Task the hedged replica belongs to.
        task: u32,
    },
    /// The coordinator scheduled a local recomputation (audit) of a task's
    /// payload, to cross-check every result recorded for it so far.
    AuditScheduled {
        /// Task index being audited.
        task: u32,
    },
    /// An audit recomputed the task and every checked result matched.
    AuditPassed {
        /// Task index that was audited.
        task: u32,
    },
    /// An audit caught one node's result contradicting the local
    /// recomputation; the node is charged high-weight strikes.
    AuditFailed {
        /// Task index that was audited.
        task: u32,
        /// Node whose result the recomputation contradicted.
        node: u32,
    },
    /// An audit voided a tainted verdict before acceptance: the task's
    /// tally is discarded and the task re-executes from wave 1.
    VerdictVoided {
        /// Task index whose would-be verdict was voided.
        task: u32,
    },
    /// An open task touched by a caught liar had its tally discarded and
    /// restarted from wave 1 (in-flight replies become stale).
    TaskRetallied {
        /// Task index whose tally was reset.
        task: u32,
    },
    /// A job's input payload started moving across the network to its
    /// node. The replica may not begin service until the transfer
    /// completes; `eta` is the deterministic completion time charged by
    /// the network model (latency + bytes / bandwidth).
    TransferStarted {
        /// Transfer index, dense in start order.
        xfer: u32,
        /// The job whose input is being moved.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// Destination node.
        node: u32,
        /// Payload size being moved.
        bytes: u64,
        /// Scheduled transfer-completion time.
        eta: SimTime,
    },
    /// A payload transfer finished; the job's service may begin.
    TransferCompleted {
        /// Transfer index (matches its [`RunEvent::TransferStarted`]).
        xfer: u32,
        /// The job whose input arrived.
        job: u32,
        /// Task the job belongs to.
        task: u32,
        /// Destination node.
        node: u32,
    },
    /// Every task of DAG stage `stage` reached its decision; the verdict
    /// gates dispatch of dependent stages. `correct`/`wrong` count the
    /// stage's *effective* outputs: a task's output is wrong when its own
    /// accepted value is wrong or any upstream input was poisoned.
    StageDecided {
        /// Stage index in the DAG spec.
        stage: u32,
        /// Tasks whose effective output is correct.
        correct: u32,
        /// Tasks whose effective output is wrong.
        wrong: u32,
    },
    /// A wrong accepted intermediate poisoned a downstream task: the
    /// descendant computes on bad data, so its output is wrong no matter
    /// how its own replicas vote.
    PoisonPropagated {
        /// The downstream (poisoned) task.
        task: u32,
        /// Stage of the downstream task.
        stage: u32,
        /// The upstream task whose wrong accepted output caused it.
        from: u32,
    },
    /// A durable coordinator snapshot was taken at a quiescent point: the
    /// first `events` records of the run are now summarized by an
    /// on-disk checkpoint and the WAL was truncated, so this record seals
    /// the start of a fresh segment. Its own `seq` equals `events` —
    /// recovery uses that to pair segment and snapshot.
    CheckpointTaken {
        /// Events covered by the snapshot (= this record's seq).
        events: u64,
        /// FNV-1a digest of the serialized snapshot, cross-checked
        /// against the snapshot file at recovery.
        digest: u64,
    },
    /// The run is over; the event's timestamp is the run's makespan.
    RunEnded,
}

/// Fieldless discriminant of [`RunEvent`], for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// See [`RunEvent::JobDispatched`].
    JobDispatched,
    /// See [`RunEvent::JobReturned`].
    JobReturned,
    /// See [`RunEvent::JobTimedOut`].
    JobTimedOut,
    /// See [`RunEvent::JobRetried`].
    JobRetried,
    /// See [`RunEvent::WaveOpened`].
    WaveOpened,
    /// See [`RunEvent::WaveClosed`].
    WaveClosed,
    /// See [`RunEvent::VoteTallied`].
    VoteTallied,
    /// See [`RunEvent::NodeQuarantined`].
    NodeQuarantined,
    /// See [`RunEvent::NodeReleased`].
    NodeReleased,
    /// See [`RunEvent::NodeJoined`].
    NodeJoined,
    /// See [`RunEvent::NodeDeparted`].
    NodeDeparted,
    /// See [`RunEvent::OutageStarted`].
    OutageStarted,
    /// See [`RunEvent::FaultInjected`].
    FaultInjected,
    /// See [`RunEvent::VerdictReached`].
    VerdictReached,
    /// See [`RunEvent::TaskCapped`].
    TaskCapped,
    /// See [`RunEvent::WorkerCrashed`].
    WorkerCrashed,
    /// See [`RunEvent::WorkerRestarted`].
    WorkerRestarted,
    /// See [`RunEvent::TaskPoisoned`].
    TaskPoisoned,
    /// See [`RunEvent::StaleReplyDropped`].
    StaleReplyDropped,
    /// See [`RunEvent::EpochAdvanced`].
    EpochAdvanced,
    /// See [`RunEvent::HedgeLaunched`].
    HedgeLaunched,
    /// See [`RunEvent::HedgeWon`].
    HedgeWon,
    /// See [`RunEvent::HedgeWasted`].
    HedgeWasted,
    /// See [`RunEvent::AuditScheduled`].
    AuditScheduled,
    /// See [`RunEvent::AuditPassed`].
    AuditPassed,
    /// See [`RunEvent::AuditFailed`].
    AuditFailed,
    /// See [`RunEvent::VerdictVoided`].
    VerdictVoided,
    /// See [`RunEvent::TaskRetallied`].
    TaskRetallied,
    /// See [`RunEvent::TransferStarted`].
    TransferStarted,
    /// See [`RunEvent::TransferCompleted`].
    TransferCompleted,
    /// See [`RunEvent::StageDecided`].
    StageDecided,
    /// See [`RunEvent::PoisonPropagated`].
    PoisonPropagated,
    /// See [`RunEvent::CheckpointTaken`].
    CheckpointTaken,
    /// See [`RunEvent::RunEnded`].
    RunEnded,
}

impl EventKind {
    /// The kind's stable snake_case name, used in JSONL and digests.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::JobDispatched => "job_dispatched",
            EventKind::JobReturned => "job_returned",
            EventKind::JobTimedOut => "job_timed_out",
            EventKind::JobRetried => "job_retried",
            EventKind::WaveOpened => "wave_opened",
            EventKind::WaveClosed => "wave_closed",
            EventKind::VoteTallied => "vote_tallied",
            EventKind::NodeQuarantined => "node_quarantined",
            EventKind::NodeReleased => "node_released",
            EventKind::NodeJoined => "node_joined",
            EventKind::NodeDeparted => "node_departed",
            EventKind::OutageStarted => "outage_started",
            EventKind::FaultInjected => "fault_injected",
            EventKind::VerdictReached => "verdict_reached",
            EventKind::TaskCapped => "task_capped",
            EventKind::WorkerCrashed => "worker_crashed",
            EventKind::WorkerRestarted => "worker_restarted",
            EventKind::TaskPoisoned => "task_poisoned",
            EventKind::StaleReplyDropped => "stale_reply_dropped",
            EventKind::EpochAdvanced => "epoch_advanced",
            EventKind::HedgeLaunched => "hedge_launched",
            EventKind::HedgeWon => "hedge_won",
            EventKind::HedgeWasted => "hedge_wasted",
            EventKind::AuditScheduled => "audit_scheduled",
            EventKind::AuditPassed => "audit_passed",
            EventKind::AuditFailed => "audit_failed",
            EventKind::VerdictVoided => "verdict_voided",
            EventKind::TaskRetallied => "task_retallied",
            EventKind::TransferStarted => "transfer_started",
            EventKind::TransferCompleted => "transfer_completed",
            EventKind::StageDecided => "stage_decided",
            EventKind::PoisonPropagated => "poison_propagated",
            EventKind::CheckpointTaken => "checkpoint_taken",
            EventKind::RunEnded => "run_ended",
        }
    }
}

impl RunEvent {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            RunEvent::JobDispatched { .. } => EventKind::JobDispatched,
            RunEvent::JobReturned { .. } => EventKind::JobReturned,
            RunEvent::JobTimedOut { .. } => EventKind::JobTimedOut,
            RunEvent::JobRetried { .. } => EventKind::JobRetried,
            RunEvent::WaveOpened { .. } => EventKind::WaveOpened,
            RunEvent::WaveClosed { .. } => EventKind::WaveClosed,
            RunEvent::VoteTallied { .. } => EventKind::VoteTallied,
            RunEvent::NodeQuarantined { .. } => EventKind::NodeQuarantined,
            RunEvent::NodeReleased { .. } => EventKind::NodeReleased,
            RunEvent::NodeJoined { .. } => EventKind::NodeJoined,
            RunEvent::NodeDeparted { .. } => EventKind::NodeDeparted,
            RunEvent::OutageStarted { .. } => EventKind::OutageStarted,
            RunEvent::FaultInjected { .. } => EventKind::FaultInjected,
            RunEvent::VerdictReached { .. } => EventKind::VerdictReached,
            RunEvent::TaskCapped { .. } => EventKind::TaskCapped,
            RunEvent::WorkerCrashed { .. } => EventKind::WorkerCrashed,
            RunEvent::WorkerRestarted { .. } => EventKind::WorkerRestarted,
            RunEvent::TaskPoisoned { .. } => EventKind::TaskPoisoned,
            RunEvent::StaleReplyDropped { .. } => EventKind::StaleReplyDropped,
            RunEvent::EpochAdvanced { .. } => EventKind::EpochAdvanced,
            RunEvent::HedgeLaunched { .. } => EventKind::HedgeLaunched,
            RunEvent::HedgeWon { .. } => EventKind::HedgeWon,
            RunEvent::HedgeWasted { .. } => EventKind::HedgeWasted,
            RunEvent::AuditScheduled { .. } => EventKind::AuditScheduled,
            RunEvent::AuditPassed { .. } => EventKind::AuditPassed,
            RunEvent::AuditFailed { .. } => EventKind::AuditFailed,
            RunEvent::VerdictVoided { .. } => EventKind::VerdictVoided,
            RunEvent::TaskRetallied { .. } => EventKind::TaskRetallied,
            RunEvent::TransferStarted { .. } => EventKind::TransferStarted,
            RunEvent::TransferCompleted { .. } => EventKind::TransferCompleted,
            RunEvent::StageDecided { .. } => EventKind::StageDecided,
            RunEvent::PoisonPropagated { .. } => EventKind::PoisonPropagated,
            RunEvent::CheckpointTaken { .. } => EventKind::CheckpointTaken,
            RunEvent::RunEnded => EventKind::RunEnded,
        }
    }

    /// The task the event concerns, if any.
    pub fn task(&self) -> Option<u32> {
        match *self {
            RunEvent::JobDispatched { task, .. }
            | RunEvent::JobReturned { task, .. }
            | RunEvent::JobTimedOut { task, .. }
            | RunEvent::JobRetried { task, .. }
            | RunEvent::WaveOpened { task, .. }
            | RunEvent::WaveClosed { task, .. }
            | RunEvent::VoteTallied { task, .. }
            | RunEvent::VerdictReached { task, .. }
            | RunEvent::TaskCapped { task }
            | RunEvent::WorkerCrashed { task, .. }
            | RunEvent::TaskPoisoned { task, .. }
            | RunEvent::StaleReplyDropped { task, .. }
            | RunEvent::EpochAdvanced { task, .. }
            | RunEvent::HedgeLaunched { task, .. }
            | RunEvent::HedgeWon { task, .. }
            | RunEvent::HedgeWasted { task, .. }
            | RunEvent::AuditScheduled { task }
            | RunEvent::AuditPassed { task }
            | RunEvent::AuditFailed { task, .. }
            | RunEvent::VerdictVoided { task }
            | RunEvent::TaskRetallied { task }
            | RunEvent::TransferStarted { task, .. }
            | RunEvent::TransferCompleted { task, .. }
            | RunEvent::PoisonPropagated { task, .. } => Some(task),
            _ => None,
        }
    }

    /// The node the event concerns, if any.
    pub fn node(&self) -> Option<u32> {
        match *self {
            RunEvent::JobDispatched { node, .. }
            | RunEvent::JobReturned { node, .. }
            | RunEvent::JobTimedOut { node, .. }
            | RunEvent::NodeQuarantined { node }
            | RunEvent::NodeReleased { node }
            | RunEvent::NodeJoined { node }
            | RunEvent::NodeDeparted { node, .. }
            | RunEvent::WorkerCrashed { node, .. }
            | RunEvent::WorkerRestarted { node, .. }
            | RunEvent::AuditFailed { node, .. }
            | RunEvent::TransferStarted { node, .. }
            | RunEvent::TransferCompleted { node, .. } => Some(node),
            _ => None,
        }
    }
}

/// One journal entry: an event stamped with its simulated time and a
/// strictly monotone sequence number (total order even within one instant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped {
    /// Simulated time at which the event occurred.
    pub at: SimTime,
    /// Recording sequence number, strictly increasing across the journal.
    pub seq: u64,
    /// The event.
    pub event: RunEvent,
}

impl Stamped {
    /// Serializes this entry as one JSONL object (no trailing newline) —
    /// the exact line format [`Journal::to_jsonl`] emits and
    /// [`Journal::from_jsonl`] parses. [`WalWriter`] appends these lines
    /// one durable write at a time.
    pub fn to_jsonl_line(&self) -> String {
        let mut line = format!(
            "{{\"at\":{},\"seq\":{},\"kind\":\"{}\"",
            self.at.as_micros(),
            self.seq,
            self.event.kind().name()
        );
        match self.event {
            RunEvent::JobDispatched {
                job,
                task,
                node,
                eta,
            } => line.push_str(&format!(
                ",\"job\":{job},\"task\":{task},\"node\":{node},\"eta\":{}",
                eta.as_micros()
            )),
            RunEvent::JobReturned {
                job,
                task,
                node,
                value,
            } => line.push_str(&format!(
                ",\"job\":{job},\"task\":{task},\"node\":{node},\"value\":{value}"
            )),
            RunEvent::JobTimedOut { job, task, node } => {
                line.push_str(&format!(",\"job\":{job},\"task\":{task},\"node\":{node}"))
            }
            RunEvent::JobRetried { task, attempt } => {
                line.push_str(&format!(",\"task\":{task},\"attempt\":{attempt}"))
            }
            RunEvent::WaveOpened { task, wave, jobs } => {
                line.push_str(&format!(",\"task\":{task},\"wave\":{wave},\"jobs\":{jobs}"))
            }
            RunEvent::WaveClosed { task, wave } => {
                line.push_str(&format!(",\"task\":{task},\"wave\":{wave}"))
            }
            RunEvent::VoteTallied {
                task,
                value,
                leader_count,
                runner_up,
            } => line.push_str(&format!(
                ",\"task\":{task},\"value\":{value},\"leader\":{leader_count},\"runner_up\":{runner_up}"
            )),
            RunEvent::NodeQuarantined { node }
            | RunEvent::NodeReleased { node }
            | RunEvent::NodeJoined { node } => line.push_str(&format!(",\"node\":{node}")),
            RunEvent::NodeDeparted { node, reason } => line.push_str(&format!(
                ",\"node\":{node},\"reason\":\"{}\"",
                reason.name()
            )),
            RunEvent::OutageStarted { region } => line.push_str(&format!(",\"region\":{region}")),
            RunEvent::FaultInjected { kind } => {
                line.push_str(&format!(",\"fault\":\"{}\"", kind.name()))
            }
            RunEvent::VerdictReached {
                task,
                value,
                degraded,
                confidence,
            } => line.push_str(&format!(
                ",\"task\":{task},\"value\":{value},\"degraded\":{degraded},\"confidence\":{confidence:?}"
            )),
            RunEvent::TaskCapped { task } => line.push_str(&format!(",\"task\":{task}")),
            RunEvent::WorkerCrashed { node, job, task } => {
                line.push_str(&format!(",\"node\":{node},\"job\":{job},\"task\":{task}"))
            }
            RunEvent::WorkerRestarted { node, incarnation } => {
                line.push_str(&format!(",\"node\":{node},\"incarnation\":{incarnation}"))
            }
            RunEvent::TaskPoisoned { task, crashes } => {
                line.push_str(&format!(",\"task\":{task},\"crashes\":{crashes}"))
            }
            RunEvent::StaleReplyDropped { job, task, epoch } => {
                line.push_str(&format!(",\"job\":{job},\"task\":{task},\"epoch\":{epoch}"))
            }
            RunEvent::EpochAdvanced { task, epoch } => {
                line.push_str(&format!(",\"task\":{task},\"epoch\":{epoch}"))
            }
            RunEvent::HedgeLaunched {
                job,
                task,
                origin,
                epoch,
            } => line.push_str(&format!(
                ",\"job\":{job},\"task\":{task},\"origin\":{origin},\"epoch\":{epoch}"
            )),
            RunEvent::HedgeWon { job, task } | RunEvent::HedgeWasted { job, task } => {
                line.push_str(&format!(",\"job\":{job},\"task\":{task}"))
            }
            RunEvent::AuditScheduled { task }
            | RunEvent::AuditPassed { task }
            | RunEvent::VerdictVoided { task }
            | RunEvent::TaskRetallied { task } => line.push_str(&format!(",\"task\":{task}")),
            RunEvent::AuditFailed { task, node } => {
                line.push_str(&format!(",\"task\":{task},\"node\":{node}"))
            }
            RunEvent::TransferStarted {
                xfer,
                job,
                task,
                node,
                bytes,
                eta,
            } => line.push_str(&format!(
                ",\"xfer\":{xfer},\"job\":{job},\"task\":{task},\"node\":{node},\"bytes\":{bytes},\"eta\":{}",
                eta.as_micros()
            )),
            RunEvent::TransferCompleted {
                xfer,
                job,
                task,
                node,
            } => line.push_str(&format!(
                ",\"xfer\":{xfer},\"job\":{job},\"task\":{task},\"node\":{node}"
            )),
            RunEvent::StageDecided {
                stage,
                correct,
                wrong,
            } => line.push_str(&format!(
                ",\"stage\":{stage},\"correct\":{correct},\"wrong\":{wrong}"
            )),
            RunEvent::PoisonPropagated { task, stage, from } => {
                line.push_str(&format!(",\"task\":{task},\"stage\":{stage},\"from\":{from}"))
            }
            RunEvent::CheckpointTaken { events, digest } => {
                line.push_str(&format!(",\"events\":{events},\"digest\":{digest}"))
            }
            RunEvent::RunEnded => {}
        }
        line.push('}');
        line
    }

    /// Serializes this entry with a trailing per-record checksum field:
    /// the canonical [`to_jsonl_line`](Self::to_jsonl_line) form with
    /// `,"crc":"<16 hex>"` spliced in before the closing brace, where the
    /// checksum is the FNV-1a hash of the canonical line's bytes. The
    /// result is still one flat JSON object, so checksummed and legacy
    /// records interleave freely in one WAL; [`from_jsonl_line`]
    /// (Self::from_jsonl_line) verifies and strips the field.
    pub fn to_jsonl_line_checksummed(&self) -> String {
        let mut line = self.to_jsonl_line();
        let crc = fnv1a_64(line.as_bytes());
        line.pop(); // the closing '}'
        line.push_str(&format!(",\"crc\":\"{crc:016x}\"}}"));
        line
    }

    /// Parses one entry back from its [`to_jsonl_line`](Self::to_jsonl_line)
    /// or [`to_jsonl_line_checksummed`](Self::to_jsonl_line_checksummed)
    /// form. The error is a bare message; callers attach line numbers.
    ///
    /// Two corruption guards run on every line. A checksummed record's
    /// trailer is verified against the FNV-1a hash of its canonical bytes,
    /// so any in-place mutation of the content is reported as a checksum
    /// mismatch. And — checksummed or not — the parsed record must
    /// re-serialize to exactly the canonical bytes it was parsed from, so
    /// a mutation that still parses (a damaged key name the flat parser
    /// would otherwise skip as unknown, a re-ordered field) can never be
    /// silently accepted as a different valid event.
    pub fn from_jsonl_line(line: &str) -> Result<Self, String> {
        let canonical = strip_verified_checksum(line.trim())?;
        let stamped = Self::parse_canonical(&canonical)?;
        if stamped.to_jsonl_line() != canonical.as_ref() {
            return Err("record is not in canonical form (corruption suspected)".to_string());
        }
        Ok(stamped)
    }

    fn parse_canonical(line: &str) -> Result<Self, String> {
        let fields = parse_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}'"))
        };
        let int = |key: &str| -> Result<u64, String> {
            match get(key)? {
                JsonValue::Int(n) => Ok(*n),
                other => Err(format!("field '{key}' is not an integer: {other:?}")),
            }
        };
        let narrow = |key: &str| -> Result<u32, String> {
            u32::try_from(int(key)?).map_err(|_| format!("field '{key}' exceeds u32"))
        };
        let boolean = |key: &str| -> Result<bool, String> {
            match get(key)? {
                JsonValue::Bool(b) => Ok(*b),
                other => Err(format!("field '{key}' is not a bool: {other:?}")),
            }
        };
        let string = |key: &str| -> Result<&str, String> {
            match get(key)? {
                JsonValue::Str(s) => Ok(s.as_str()),
                other => Err(format!("field '{key}' is not a string: {other:?}")),
            }
        };
        let float = |key: &str| -> Result<f64, String> {
            match get(key)? {
                JsonValue::Float(x) => Ok(*x),
                JsonValue::Int(n) => Ok(*n as f64),
                other => Err(format!("field '{key}' is not a number: {other:?}")),
            }
        };

        let at = SimTime::from_micros(int("at")?);
        let seq = int("seq")?;
        let kind = string("kind")?.to_string();
        let event = match kind.as_str() {
            "job_dispatched" => RunEvent::JobDispatched {
                job: narrow("job")?,
                task: narrow("task")?,
                node: narrow("node")?,
                eta: SimTime::from_micros(int("eta")?),
            },
            "job_returned" => RunEvent::JobReturned {
                job: narrow("job")?,
                task: narrow("task")?,
                node: narrow("node")?,
                value: boolean("value")?,
            },
            "job_timed_out" => RunEvent::JobTimedOut {
                job: narrow("job")?,
                task: narrow("task")?,
                node: narrow("node")?,
            },
            "job_retried" => RunEvent::JobRetried {
                task: narrow("task")?,
                attempt: narrow("attempt")?,
            },
            "wave_opened" => RunEvent::WaveOpened {
                task: narrow("task")?,
                wave: narrow("wave")?,
                jobs: narrow("jobs")?,
            },
            "wave_closed" => RunEvent::WaveClosed {
                task: narrow("task")?,
                wave: narrow("wave")?,
            },
            "vote_tallied" => RunEvent::VoteTallied {
                task: narrow("task")?,
                value: boolean("value")?,
                leader_count: narrow("leader")?,
                runner_up: narrow("runner_up")?,
            },
            "node_quarantined" => RunEvent::NodeQuarantined {
                node: narrow("node")?,
            },
            "node_released" => RunEvent::NodeReleased {
                node: narrow("node")?,
            },
            "node_joined" => RunEvent::NodeJoined {
                node: narrow("node")?,
            },
            "node_departed" => RunEvent::NodeDeparted {
                node: narrow("node")?,
                reason: DepartureReason::from_name(string("reason")?)
                    .ok_or_else(|| "unknown departure reason".to_string())?,
            },
            "outage_started" => RunEvent::OutageStarted {
                region: narrow("region")?,
            },
            "fault_injected" => RunEvent::FaultInjected {
                kind: FaultKind::from_name(string("fault")?)
                    .ok_or_else(|| "unknown fault kind".to_string())?,
            },
            "verdict_reached" => RunEvent::VerdictReached {
                task: narrow("task")?,
                value: boolean("value")?,
                degraded: boolean("degraded")?,
                confidence: float("confidence")?,
            },
            "task_capped" => RunEvent::TaskCapped {
                task: narrow("task")?,
            },
            "worker_crashed" => RunEvent::WorkerCrashed {
                node: narrow("node")?,
                job: narrow("job")?,
                task: narrow("task")?,
            },
            "worker_restarted" => RunEvent::WorkerRestarted {
                node: narrow("node")?,
                incarnation: narrow("incarnation")?,
            },
            "task_poisoned" => RunEvent::TaskPoisoned {
                task: narrow("task")?,
                crashes: narrow("crashes")?,
            },
            "stale_reply_dropped" => RunEvent::StaleReplyDropped {
                job: narrow("job")?,
                task: narrow("task")?,
                epoch: narrow("epoch")?,
            },
            "epoch_advanced" => RunEvent::EpochAdvanced {
                task: narrow("task")?,
                epoch: narrow("epoch")?,
            },
            "hedge_launched" => RunEvent::HedgeLaunched {
                job: narrow("job")?,
                task: narrow("task")?,
                origin: narrow("origin")?,
                epoch: narrow("epoch")?,
            },
            "hedge_won" => RunEvent::HedgeWon {
                job: narrow("job")?,
                task: narrow("task")?,
            },
            "hedge_wasted" => RunEvent::HedgeWasted {
                job: narrow("job")?,
                task: narrow("task")?,
            },
            "audit_scheduled" => RunEvent::AuditScheduled {
                task: narrow("task")?,
            },
            "audit_passed" => RunEvent::AuditPassed {
                task: narrow("task")?,
            },
            "audit_failed" => RunEvent::AuditFailed {
                task: narrow("task")?,
                node: narrow("node")?,
            },
            "verdict_voided" => RunEvent::VerdictVoided {
                task: narrow("task")?,
            },
            "task_retallied" => RunEvent::TaskRetallied {
                task: narrow("task")?,
            },
            "transfer_started" => RunEvent::TransferStarted {
                xfer: narrow("xfer")?,
                job: narrow("job")?,
                task: narrow("task")?,
                node: narrow("node")?,
                bytes: int("bytes")?,
                eta: SimTime::from_micros(int("eta")?),
            },
            "transfer_completed" => RunEvent::TransferCompleted {
                xfer: narrow("xfer")?,
                job: narrow("job")?,
                task: narrow("task")?,
                node: narrow("node")?,
            },
            "stage_decided" => RunEvent::StageDecided {
                stage: narrow("stage")?,
                correct: narrow("correct")?,
                wrong: narrow("wrong")?,
            },
            "poison_propagated" => RunEvent::PoisonPropagated {
                task: narrow("task")?,
                stage: narrow("stage")?,
                from: narrow("from")?,
            },
            "checkpoint_taken" => RunEvent::CheckpointTaken {
                events: int("events")?,
                digest: int("digest")?,
            },
            "run_ended" => RunEvent::RunEnded,
            other => return Err(format!("unknown event kind '{other}'")),
        };
        Ok(Stamped { at, seq, event })
    }
}

/// 64-bit FNV-1a over raw bytes — the per-record WAL checksum. (The same
/// constants as [`Journal::digest`], but over serialized line bytes rather
/// than decoded fields.)
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Detects and verifies the `,"crc":"<16 hex>"` trailer of a checksummed
/// record, returning the canonical (trailer-free) line. A line without the
/// trailer is returned as-is — legacy WALs keep parsing. A present-but-
/// wrong trailer (bad shape, non-hex digits, or a hash that does not match
/// the canonical bytes) is corruption.
fn strip_verified_checksum(line: &str) -> Result<std::borrow::Cow<'_, str>, String> {
    const TAG: &str = ",\"crc\":\"";
    let Some(idx) = line.rfind(TAG) else {
        return Ok(std::borrow::Cow::Borrowed(line));
    };
    let trailer = &line[idx + TAG.len()..];
    let hex = trailer
        .strip_suffix("\"}")
        .filter(|h| h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()))
        .ok_or_else(|| "malformed checksum trailer".to_string())?;
    let stated = u64::from_str_radix(hex, 16).expect("16 hex digits fit u64");
    let mut canonical = line[..idx].to_string();
    canonical.push('}');
    let actual = fnv1a_64(canonical.as_bytes());
    if stated != actual {
        return Err(format!(
            "checksum mismatch: record states {stated:016x} but content hashes to {actual:016x}"
        ));
    }
    Ok(std::borrow::Cow::Owned(canonical))
}

/// Best-effort extraction of the `"seq"` field from a raw (possibly
/// corrupt) WAL line, so parse errors can name the damaged record even
/// when it no longer parses as a whole.
fn sniff_seq(line: &str) -> Option<u64> {
    let idx = line.find("\"seq\":")?;
    let rest = &line[idx + 6..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Error returned by [`Journal::from_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Byte offset of the start of the offending line within the input.
    pub offset: usize,
    /// The damaged record's sequence number, when it could still be
    /// sniffed out of the corrupt line.
    pub seq: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {} at byte {}", self.line, self.offset)?;
        if let Some(seq) = self.seq {
            write!(f, " (record seq {seq})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for JournalParseError {}

/// An append-only, deterministic event journal of one run.
///
/// A disabled journal ([`Journal::disabled`]) drops every record without
/// allocating, so always-on emission sites cost one predictable branch when
/// journaling is off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    enabled: bool,
    events: Vec<Stamped>,
    next_seq: u64,
}

impl Journal {
    /// Creates an enabled, empty journal.
    pub fn new() -> Self {
        Self {
            enabled: true,
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates a journal that silently discards every record.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an enabled, empty journal whose next recorded event gets
    /// sequence number `next_seq` — the resume point after a checkpoint
    /// truncated the history the sequence numbers continue from.
    pub fn resume_at(next_seq: u64) -> Self {
        Self {
            enabled: true,
            events: Vec::new(),
            next_seq,
        }
    }

    /// The sequence number the next recorded event will get. Since
    /// sequence numbers are dense, this is also the total number of events
    /// ever recorded into this stream — including any prefix compacted
    /// away by a checkpoint (see [`Journal::resume_at`]).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one event at simulated time `at`. No-op when disabled.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if events are recorded out of time order —
    /// simulation clocks are monotone, so that is a bug at the emission
    /// site.
    pub fn record(&mut self, at: SimTime, event: RunEvent) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.events.last().map(|e| e.at <= at).unwrap_or(true),
            "journal recorded out of time order at {at}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Stamped { at, seq, event });
    }

    /// All entries, in recording (= time) order.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Entries concerning one task, in order.
    pub fn for_task(&self, task: u32) -> impl Iterator<Item = &Stamped> + '_ {
        self.events
            .iter()
            .filter(move |e| e.event.task() == Some(task))
    }

    /// Entries concerning one node, in order.
    pub fn for_node(&self, node: u32) -> impl Iterator<Item = &Stamped> + '_ {
        self.events
            .iter()
            .filter(move |e| e.event.node() == Some(node))
    }

    /// Entries of one kind, in order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Stamped> + '_ {
        self.events.iter().filter(move |e| e.event.kind() == kind)
    }

    /// Number of entries of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.of_kind(kind).count()
    }

    /// The contiguous window of entries with `t0 <= at <= t1` (binary
    /// search; the journal is time-ordered by construction).
    pub fn between(&self, t0: SimTime, t1: SimTime) -> &[Stamped] {
        let lo = self.events.partition_point(|e| e.at < t0);
        let hi = self.events.partition_point(|e| e.at <= t1);
        &self.events[lo..hi.max(lo)]
    }

    /// One task's full timeline: every entry concerning it, in order.
    pub fn task_timeline(&self, task: u32) -> Vec<&Stamped> {
        self.for_task(task).collect()
    }

    /// 64-bit FNV-1a digest of the entire event stream.
    ///
    /// The digest covers timestamps, sequence numbers, event kinds, and
    /// every field (floats by their exact bit pattern), so *any* change to
    /// the trajectory — reordering, a shifted timestamp, a different vote —
    /// changes the digest. Golden tests pin a run to one `u64`.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for e in &self.events {
            eat(&e.at.as_micros().to_le_bytes());
            eat(&e.seq.to_le_bytes());
            eat(e.event.kind().name().as_bytes());
            match e.event {
                RunEvent::JobDispatched {
                    job,
                    task,
                    node,
                    eta,
                } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                    eat(&eta.as_micros().to_le_bytes());
                }
                RunEvent::JobReturned {
                    job,
                    task,
                    node,
                    value,
                } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                    eat(&[value as u8]);
                }
                RunEvent::JobTimedOut { job, task, node } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                }
                RunEvent::JobRetried { task, attempt } => {
                    eat(&task.to_le_bytes());
                    eat(&attempt.to_le_bytes());
                }
                RunEvent::WaveOpened { task, wave, jobs } => {
                    eat(&task.to_le_bytes());
                    eat(&wave.to_le_bytes());
                    eat(&jobs.to_le_bytes());
                }
                RunEvent::WaveClosed { task, wave } => {
                    eat(&task.to_le_bytes());
                    eat(&wave.to_le_bytes());
                }
                RunEvent::VoteTallied {
                    task,
                    value,
                    leader_count,
                    runner_up,
                } => {
                    eat(&task.to_le_bytes());
                    eat(&[value as u8]);
                    eat(&leader_count.to_le_bytes());
                    eat(&runner_up.to_le_bytes());
                }
                RunEvent::NodeQuarantined { node }
                | RunEvent::NodeReleased { node }
                | RunEvent::NodeJoined { node } => eat(&node.to_le_bytes()),
                RunEvent::NodeDeparted { node, reason } => {
                    eat(&node.to_le_bytes());
                    eat(reason.name().as_bytes());
                }
                RunEvent::OutageStarted { region } => eat(&region.to_le_bytes()),
                RunEvent::FaultInjected { kind } => eat(kind.name().as_bytes()),
                RunEvent::VerdictReached {
                    task,
                    value,
                    degraded,
                    confidence,
                } => {
                    eat(&task.to_le_bytes());
                    eat(&[value as u8, degraded as u8]);
                    eat(&confidence.to_bits().to_le_bytes());
                }
                RunEvent::TaskCapped { task } => eat(&task.to_le_bytes()),
                RunEvent::WorkerCrashed { node, job, task } => {
                    eat(&node.to_le_bytes());
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                }
                RunEvent::WorkerRestarted { node, incarnation } => {
                    eat(&node.to_le_bytes());
                    eat(&incarnation.to_le_bytes());
                }
                RunEvent::TaskPoisoned { task, crashes } => {
                    eat(&task.to_le_bytes());
                    eat(&crashes.to_le_bytes());
                }
                RunEvent::StaleReplyDropped { job, task, epoch } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&epoch.to_le_bytes());
                }
                RunEvent::EpochAdvanced { task, epoch } => {
                    eat(&task.to_le_bytes());
                    eat(&epoch.to_le_bytes());
                }
                RunEvent::HedgeLaunched {
                    job,
                    task,
                    origin,
                    epoch,
                } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&origin.to_le_bytes());
                    eat(&epoch.to_le_bytes());
                }
                RunEvent::HedgeWon { job, task } | RunEvent::HedgeWasted { job, task } => {
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                }
                RunEvent::AuditScheduled { task }
                | RunEvent::AuditPassed { task }
                | RunEvent::VerdictVoided { task }
                | RunEvent::TaskRetallied { task } => eat(&task.to_le_bytes()),
                RunEvent::AuditFailed { task, node } => {
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                }
                RunEvent::TransferStarted {
                    xfer,
                    job,
                    task,
                    node,
                    bytes,
                    eta,
                } => {
                    eat(&xfer.to_le_bytes());
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                    eat(&bytes.to_le_bytes());
                    eat(&eta.as_micros().to_le_bytes());
                }
                RunEvent::TransferCompleted {
                    xfer,
                    job,
                    task,
                    node,
                } => {
                    eat(&xfer.to_le_bytes());
                    eat(&job.to_le_bytes());
                    eat(&task.to_le_bytes());
                    eat(&node.to_le_bytes());
                }
                RunEvent::StageDecided {
                    stage,
                    correct,
                    wrong,
                } => {
                    eat(&stage.to_le_bytes());
                    eat(&correct.to_le_bytes());
                    eat(&wrong.to_le_bytes());
                }
                RunEvent::PoisonPropagated { task, stage, from } => {
                    eat(&task.to_le_bytes());
                    eat(&stage.to_le_bytes());
                    eat(&from.to_le_bytes());
                }
                RunEvent::CheckpointTaken { events, digest } => {
                    eat(&events.to_le_bytes());
                    eat(&digest.to_le_bytes());
                }
                RunEvent::RunEnded => {}
            }
        }
        hash
    }

    /// The digest as a fixed-width hex string, convenient for golden tests.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Serializes the journal as JSON Lines: one event object per line,
    /// fixed key order, byte-deterministic. Floats use Rust's shortest
    /// round-trip formatting, so [`Journal::from_jsonl`] restores them
    /// bit-exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            out.push_str(&e.to_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// Parses a journal back from its [`Journal::to_jsonl`] form.
    ///
    /// # Errors
    ///
    /// Returns [`JournalParseError`] naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Self, JournalParseError> {
        let mut journal = Journal::new();
        let mut offset = 0usize;
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line_start = offset;
            offset += line.len() + 1;
            if line.trim().is_empty() {
                continue;
            }
            let stamped = Stamped::from_jsonl_line(line).map_err(|message| JournalParseError {
                line: line_no,
                offset: line_start,
                seq: sniff_seq(line),
                message,
            })?;
            if let Some(last) = journal.events.last() {
                if stamped.at < last.at {
                    return Err(JournalParseError {
                        line: line_no,
                        offset: line_start,
                        seq: Some(stamped.seq),
                        message: format!(
                            "events out of time order: {} after {}",
                            stamped.at, last.at
                        ),
                    });
                }
            }
            journal.next_seq = stamped.seq + 1;
            journal.events.push(stamped);
        }
        Ok(journal)
    }

    /// Reads a journal from possibly crash-truncated WAL bytes.
    ///
    /// A writer that dies mid-append leaves a *torn tail*: a final chunk
    /// with no trailing newline (whether or not the truncated bytes still
    /// parse). Such a tail is dropped and reported via [`WalPrefix::torn`];
    /// `valid_bytes` is the length of the longest whole-record prefix, so a
    /// recovering writer can truncate the file there and resume appending.
    ///
    /// # Errors
    ///
    /// A malformed record on any *newline-terminated* line — including the
    /// final one — is in-place corruption of a fully-written record, not a
    /// torn write (each append writes `record + '\n'` in one call, so a
    /// partial append can never include the newline). That fails with
    /// [`JournalParseError`], carrying the line's byte offset and, when it
    /// can still be sniffed from the damaged bytes, the record's seq.
    pub fn from_jsonl_prefix(text: &str) -> Result<WalPrefix, JournalParseError> {
        let mut journal = Journal::new();
        let mut torn = false;
        let mut valid_bytes = 0usize;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < text.len() {
            line_no += 1;
            let rest = &text[offset..];
            let (line, consumed, terminated) = match rest.find('\n') {
                Some(nl) => (&rest[..nl], nl + 1, true),
                None => (rest, rest.len(), false),
            };
            let end = offset + consumed;
            let last = end == text.len();
            if line.trim().is_empty() {
                if terminated {
                    valid_bytes = end;
                }
                offset = end;
                continue;
            }
            match Stamped::from_jsonl_line(line) {
                Ok(stamped) => {
                    if !terminated {
                        // Parsed, but the newline never hit the disk — the
                        // record itself may be incomplete (e.g. a truncated
                        // integer still parses). Only whole lines count.
                        torn = true;
                        break;
                    }
                    if let Some(prev) = journal.events.last() {
                        if stamped.at < prev.at {
                            return Err(JournalParseError {
                                line: line_no,
                                offset,
                                seq: Some(stamped.seq),
                                message: format!(
                                    "events out of time order: {} after {}",
                                    stamped.at, prev.at
                                ),
                            });
                        }
                    }
                    journal.next_seq = stamped.seq + 1;
                    journal.events.push(stamped);
                    valid_bytes = end;
                }
                Err(message) => {
                    if last && !terminated {
                        // A torn append: the writer died before the
                        // newline hit the disk, so the record was never
                        // acknowledged — drop it and resume.
                        torn = true;
                        break;
                    }
                    // A terminated line was fully written in one append
                    // (the newline is its last byte), so a parse or
                    // checksum failure here is in-place corruption of an
                    // acknowledged record — refuse, never resume past it.
                    return Err(JournalParseError {
                        line: line_no,
                        offset,
                        seq: sniff_seq(line),
                        message,
                    });
                }
            }
            offset = end;
        }
        Ok(WalPrefix {
            journal,
            torn,
            valid_bytes,
        })
    }

    /// Deterministically merges per-shard event streams into one journal.
    ///
    /// A sharded runtime records one journal (and WAL segment) per
    /// coordinator shard. This merge reconstructs the global stream:
    /// events are ordered by `(at, shard index, seq)` — time first, then
    /// the owning shard as the tiebreak, then the shard's own sequence —
    /// and re-sequenced `0..n`. The order is a pure function of the input
    /// streams, so two merges of the same segments are byte-identical, and
    /// replaying the merged stream (e.g. through a report fold) is
    /// reproducible. Merging a single journal re-sequences but otherwise
    /// returns it unchanged.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any input stream is internally out of
    /// time order (each shard's journal is monotone by construction).
    pub fn merge_sharded(parts: &[Journal]) -> Journal {
        let mut keyed: Vec<(SimTime, usize, u64, &Stamped)> = Vec::new();
        for (shard, part) in parts.iter().enumerate() {
            debug_assert!(
                part.events.windows(2).all(|w| w[0].at <= w[1].at),
                "shard {shard} journal is out of time order"
            );
            for e in &part.events {
                keyed.push((e.at, shard, e.seq, e));
            }
        }
        keyed.sort_by_key(|&(at, shard, seq, _)| (at, shard, seq));
        let mut merged = Journal::new();
        for (i, (_, _, _, e)) in keyed.into_iter().enumerate() {
            merged.events.push(Stamped {
                at: e.at,
                seq: i as u64,
                event: e.event,
            });
        }
        merged.next_seq = merged.events.len() as u64;
        merged
    }
}

/// Result of [`Journal::from_jsonl_prefix`]: the longest whole-record
/// prefix of a write-ahead log, plus what was left behind.
#[derive(Debug)]
pub struct WalPrefix {
    /// Events recovered from the intact prefix.
    pub journal: Journal,
    /// True when a torn (unterminated or unparsable) final record was
    /// dropped.
    pub torn: bool,
    /// Byte length of the intact prefix; truncate the file here before
    /// resuming appends.
    pub valid_bytes: usize,
}

/// Durable appender for the JSONL write-ahead log.
///
/// Each [`append`](WalWriter::append) writes one complete
/// `record + '\n'` in a single `write` call and flushes — with
/// `sync = true` it also `fdatasync`s, so an acknowledged append survives
/// process death and at most the *final* record of the file can ever be
/// torn. The file contents stay byte-identical to
/// [`Journal::to_jsonl`] of the events appended so far (or its
/// checksummed equivalent under [`with_checksums`](WalWriter::with_checksums)).
///
/// ## Group commit
///
/// [`with_batch`](WalWriter::with_batch) amortizes the fsync tax: with a
/// batch of `n`, only every `n`-th append pays the `fdatasync`, while each
/// append still writes and flushes its complete record (so an in-process
/// crash loses nothing — only power loss can drop the unsynced tail).
/// Callers with an ordering barrier — "this event must be durable before
/// its side effect" — force the sync early with
/// [`commit`](WalWriter::commit). The default batch of 1 is the original
/// sync-every-append behavior.
///
/// ## Poisoning
///
/// Any I/O error — a failed write, flush, or `fdatasync` — permanently
/// poisons the writer: every later [`append`](WalWriter::append),
/// [`commit`](WalWriter::commit), or [`truncate`](WalWriter::truncate)
/// fails fast with the original error's message. A failed fsync in
/// particular leaves the kernel free to have *dropped* the dirty pages
/// (the fsyncgate failure class), so retrying the sync and continuing
/// would silently lose acknowledged records; the only safe recovery is to
/// reread the file through [`Journal::from_jsonl_prefix`].
#[derive(Debug)]
pub struct WalWriter {
    disk: Box<dyn crate::disk::Disk>,
    sync: bool,
    /// Appends per fdatasync under group commit; 1 = sync every append.
    batch: u64,
    /// Appends since the last sync.
    pending: u64,
    /// Write per-record checksums (see [`Stamped::to_jsonl_line_checksummed`]).
    checksum: bool,
    /// The first I/O error message, once anything failed.
    poisoned: Option<String>,
}

impl WalWriter {
    fn over(disk: Box<dyn crate::disk::Disk>, sync: bool) -> Self {
        WalWriter {
            disk,
            sync,
            batch: 1,
            pending: 0,
            checksum: false,
            poisoned: None,
        }
    }

    /// Creates (or truncates) the WAL at `path`.
    pub fn create(path: &std::path::Path, sync: bool) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(Self::over(Box::new(crate::disk::RealDisk::new(file)), sync))
    }

    /// Creates a writer over an arbitrary [`Disk`](crate::disk::Disk) —
    /// the seam the fault-injection harness uses to place a
    /// [`FaultyDisk`](crate::disk::FaultyDisk) under the log.
    pub fn with_disk(disk: Box<dyn crate::disk::Disk>, sync: bool) -> Self {
        Self::over(disk, sync)
    }

    /// Reopens an existing WAL for appending after recovery, truncating a
    /// torn tail: `valid_bytes` is the intact prefix length reported by
    /// [`Journal::from_jsonl_prefix`].
    pub fn resume(path: &std::path::Path, valid_bytes: u64, sync: bool) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        let mut writer = Self::over(Box::new(crate::disk::RealDisk::new(file)), sync);
        writer.disk.set_len(valid_bytes)?;
        writer.disk.seek_end()?;
        Ok(writer)
    }

    /// Enables group commit: `fdatasync` only every `every`-th append
    /// (clamped to at least 1). See the type docs for the durability
    /// trade-off.
    pub fn with_batch(mut self, every: u64) -> Self {
        self.batch = every.max(1);
        self
    }

    /// Enables (or disables) per-record checksums on appended lines.
    /// Checksummed and legacy records may interleave in one file; readers
    /// verify whatever framing each line carries.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksum = on;
        self
    }

    fn guard(&self) -> std::io::Result<()> {
        match &self.poisoned {
            Some(original) => Err(std::io::Error::other(format!(
                "WAL writer poisoned by earlier I/O error: {original}"
            ))),
            None => Ok(()),
        }
    }

    fn poisoning<T>(&mut self, result: std::io::Result<T>) -> std::io::Result<T> {
        if let Err(err) = &result {
            self.poisoned = Some(err.to_string());
        }
        result
    }

    /// Appends one record: a single complete-line write plus flush, and —
    /// when syncing is enabled — an `fdatasync` once the group-commit
    /// batch fills. Callers act on the event *after* this returns, which
    /// is what makes the log write-ahead; under a batch > 1 the durability
    /// boundary against power loss is the batch, not the append, and
    /// decision points call [`commit`](WalWriter::commit) to tighten it.
    ///
    /// # Errors
    ///
    /// Fails on the underlying I/O error, after which the writer is
    /// permanently poisoned — see the type docs.
    pub fn append(&mut self, entry: &Stamped) -> std::io::Result<()> {
        self.guard()?;
        let mut line = if self.checksum {
            entry.to_jsonl_line_checksummed()
        } else {
            entry.to_jsonl_line()
        };
        line.push('\n');
        let result = self.append_bytes(line.as_bytes());
        self.poisoning(result)
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.disk.write_all(bytes)?;
        self.disk.flush()?;
        if self.sync {
            self.pending += 1;
            if self.pending >= self.batch {
                self.disk.sync_data()?;
                self.pending = 0;
            }
        }
        Ok(())
    }

    /// Forces the group-commit batch to disk now. A no-op when nothing is
    /// pending (in particular under the default batch of 1, where every
    /// append already synced).
    ///
    /// # Errors
    ///
    /// Fails on the underlying I/O error, after which the writer is
    /// permanently poisoned — see the type docs.
    pub fn commit(&mut self) -> std::io::Result<()> {
        self.guard()?;
        if self.sync && self.pending > 0 {
            let result = self.disk.sync_data();
            self.poisoning(result)?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Truncates the log to zero length — the compaction step after a
    /// checkpoint snapshot has been durably written elsewhere. The next
    /// append starts a fresh segment.
    ///
    /// # Errors
    ///
    /// Fails on the underlying I/O error, after which the writer is
    /// permanently poisoned — see the type docs.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.guard()?;
        let result = match self.disk.set_len(0) {
            Ok(()) => self.disk.seek_end().map(|_| ()),
            Err(err) => Err(err),
        };
        self.pending = 0;
        self.poisoning(result)
    }
}

/// Minimal JSON scalar for the journal's flat single-line objects.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Int(u64),
    Float(f64),
    Bool(bool),
    Str(String),
}

/// Parses one flat JSON object (`{"k":v,...}`) with scalar values only —
/// exactly the shape [`Journal::to_jsonl`] emits. Strings must not contain
/// escapes (event vocabulary is fixed snake_case names).
fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut fields = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            break;
        }
        let rest2 = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key at: {rest}"))?;
        let key_end = rest2
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &rest2[..key_end];
        let after_key = rest2[key_end + 1..]
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key '{key}'"))?;
        let (value, remainder) = if let Some(v) = after_key.strip_prefix('"') {
            let end = v
                .find('"')
                .ok_or_else(|| "unterminated string value".to_string())?;
            (JsonValue::Str(v[..end].to_string()), &v[end + 1..])
        } else {
            let end = after_key.find(',').unwrap_or(after_key.len());
            let raw = &after_key[..end];
            let value = match raw {
                "true" => JsonValue::Bool(true),
                "false" => JsonValue::Bool(false),
                _ => {
                    if raw.chars().all(|c| c.is_ascii_digit()) {
                        JsonValue::Int(
                            raw.parse::<u64>()
                                .map_err(|e| format!("bad integer '{raw}': {e}"))?,
                        )
                    } else {
                        JsonValue::Float(
                            raw.parse::<f64>()
                                .map_err(|e| format!("bad number '{raw}': {e}"))?,
                        )
                    }
                }
            };
            (value, &after_key[end..])
        };
        fields.push((key.to_string(), value));
        rest = remainder;
    }
    Ok(fields)
}

pub mod assert {
    //! Trace-assertion DSL: behavioral checks over any [`Stamped`] event
    //! stream — a [`Journal`] from the simulators or a slice captured from
    //! the live runtime (`smartred-runtime`). The assertions only look at
    //! event *structure* and ordering, never at absolute timestamps, so
    //! they hold identically for sim-time and wall-clock sources.
    //!
    //! Every method panics with a descriptive message on violation, so the
    //! DSL composes directly with `#[test]` functions — a failed trajectory
    //! assertion names the offending event.
    //!
    //! # Examples
    //!
    //! ```
    //! use smartred_desim::journal::{EventKind, Journal, RunEvent};
    //! use smartred_desim::journal::assert::that;
    //! use smartred_desim::time::SimTime;
    //!
    //! let mut j = Journal::new();
    //! let t = SimTime::from_units(1.0);
    //! j.record(t, RunEvent::JobTimedOut { job: 0, task: 3, node: 1 });
    //! j.record(t, RunEvent::JobRetried { task: 3, attempt: 1 });
    //! that(&j)
    //!     .time_ordered()
    //!     .retry_follows_timeout()
    //!     .count(EventKind::JobRetried)
    //!     .exactly(1);
    //! ```

    use super::{EventKind, Journal, RunEvent, Stamped};

    /// Entry point: wraps a journal for chained assertions.
    pub fn that(journal: &Journal) -> TraceAssert<'_> {
        events(journal.events())
    }

    /// Entry point for a raw stamped-event slice — the same assertions
    /// against any event source (e.g. the live runtime's journal export).
    pub fn events(events: &[Stamped]) -> TraceAssert<'_> {
        TraceAssert { events }
    }

    /// Chainable assertion context over one stamped event stream.
    #[derive(Debug, Clone, Copy)]
    pub struct TraceAssert<'a> {
        events: &'a [Stamped],
    }

    impl<'a> TraceAssert<'a> {
        /// The underlying event stream.
        pub fn events(&self) -> &'a [Stamped] {
            self.events
        }

        /// Asserts timestamps are non-decreasing and sequence numbers
        /// strictly increasing.
        pub fn time_ordered(&self) -> &Self {
            for pair in self.events.windows(2) {
                assert!(
                    pair[0].at <= pair[1].at,
                    "journal out of time order: seq {} at {} precedes seq {} at {}",
                    pair[0].seq,
                    pair[0].at,
                    pair[1].seq,
                    pair[1].at
                );
                assert!(
                    pair[0].seq < pair[1].seq,
                    "journal sequence not strictly increasing at seq {}",
                    pair[1].seq
                );
            }
            self
        }

        /// Starts a count assertion for one event kind.
        pub fn count(&self, kind: EventKind) -> CountAssert<'a> {
            CountAssert {
                parent: *self,
                kind,
                n: self
                    .events
                    .iter()
                    .filter(|e| e.event.kind() == kind)
                    .count(),
            }
        }

        /// Asserts no event matches `pred`. `desc` names the forbidden
        /// behavior in the panic message.
        pub fn never<F>(&self, desc: &str, pred: F) -> &Self
        where
            F: Fn(&Stamped) -> bool,
        {
            if let Some(e) = self.events.iter().find(|e| pred(e)) {
                panic!(
                    "forbidden event ({desc}): seq {} at {} — {:?}",
                    e.seq, e.at, e.event
                );
            }
            self
        }

        /// Asserts every event matching `trigger` has a *later or
        /// simultaneous* event `e2` (greater sequence number) for which
        /// `response(trigger_event, e2)` holds — the generic
        /// "B eventually follows A" causality check.
        pub fn each_followed_by<T, R>(&self, desc: &str, trigger: T, response: R) -> &Self
        where
            T: Fn(&Stamped) -> bool,
            R: Fn(&Stamped, &Stamped) -> bool,
        {
            let events = self.events;
            for (i, e) in events.iter().enumerate() {
                if trigger(e) && !events[i + 1..].iter().any(|later| response(e, later)) {
                    panic!(
                        "unanswered event ({desc}): seq {} at {} — {:?} has no follow-up",
                        e.seq, e.at, e.event
                    );
                }
            }
            self
        }

        /// Asserts every event matching `effect` has an *earlier or
        /// simultaneous* event `e0` (smaller sequence number) for which
        /// `cause(e0, effect_event)` holds — "A precedes B" causality.
        pub fn each_preceded_by<E, C>(&self, desc: &str, effect: E, cause: C) -> &Self
        where
            E: Fn(&Stamped) -> bool,
            C: Fn(&Stamped, &Stamped) -> bool,
        {
            let events = self.events;
            for (i, e) in events.iter().enumerate() {
                if effect(e) && !events[..i].iter().any(|earlier| cause(earlier, e)) {
                    panic!(
                        "uncaused event ({desc}): seq {} at {} — {:?} has no preceding cause",
                        e.seq, e.at, e.event
                    );
                }
            }
            self
        }

        /// Built-in invariant: every [`RunEvent::JobRetried`] is preceded by
        /// a [`RunEvent::JobTimedOut`] of the same task.
        pub fn retry_follows_timeout(&self) -> &Self {
            self.each_preceded_by(
                "retry follows timeout",
                |e| matches!(e.event, RunEvent::JobRetried { .. }),
                |earlier, retry| match (earlier.event, retry.event) {
                    (RunEvent::JobTimedOut { task, .. }, RunEvent::JobRetried { task: rt, .. }) => {
                        task == rt
                    }
                    _ => false,
                },
            )
        }

        /// Built-in invariant: no job is dispatched to a node that is
        /// currently quarantined. Walks the stream maintaining the
        /// quarantine set (quarantine opens it; release or permanent
        /// departure closes it).
        pub fn no_dispatch_to_quarantined(&self) -> &Self {
            let mut quarantined = std::collections::HashSet::new();
            for e in self.events {
                match e.event {
                    RunEvent::NodeQuarantined { node } => {
                        quarantined.insert(node);
                    }
                    RunEvent::NodeReleased { node } | RunEvent::NodeDeparted { node, .. } => {
                        quarantined.remove(&node);
                    }
                    RunEvent::JobDispatched { node, task, .. } => {
                        assert!(
                            !quarantined.contains(&node),
                            "job for task {task} dispatched to quarantined node {node} \
                             at {} (seq {})",
                            e.at,
                            e.seq
                        );
                    }
                    _ => {}
                }
            }
            self
        }

        /// Built-in invariant: per task, wave numbers open in order 1, 2, …
        /// and a wave closes only after it opened.
        pub fn waves_well_formed(&self) -> &Self {
            use std::collections::HashMap;
            let mut opened: HashMap<u32, u32> = HashMap::new();
            for e in self.events {
                match e.event {
                    RunEvent::WaveOpened { task, wave, .. } => {
                        let prev = opened.insert(task, wave).unwrap_or(0);
                        assert!(
                            wave == prev + 1,
                            "task {task} opened wave {wave} after wave {prev} at {}",
                            e.at
                        );
                    }
                    RunEvent::WaveClosed { task, wave } => {
                        let cur = opened.get(&task).copied().unwrap_or(0);
                        assert!(
                            wave <= cur,
                            "task {task} closed wave {wave} which never opened (last {cur})"
                        );
                    }
                    _ => {}
                }
            }
            self
        }

        /// Built-in invariant: every firm (non-degraded)
        /// [`RunEvent::VerdictReached`] is preceded by at least `quorum`
        /// [`RunEvent::VoteTallied`] events for the same task carrying the
        /// accepted value. For traditional redundancy `quorum` is the vote
        /// threshold ⌈k/2⌉; for iterative redundancy it is the margin `d`
        /// (the winner leads by `d`, so it holds at least `d` votes).
        pub fn verdicts_have_quorum(&self, quorum: usize) -> &Self {
            for (i, e) in self.events.iter().enumerate() {
                if let RunEvent::VerdictReached {
                    task,
                    value,
                    degraded: false,
                    ..
                } = e.event
                {
                    let votes = self.events[..i]
                        .iter()
                        .filter(|v| {
                            matches!(
                                v.event,
                                RunEvent::VoteTallied { task: vt, value: vv, .. }
                                    if vt == task && vv == value
                            )
                        })
                        .count();
                    assert!(
                        votes >= quorum,
                        "task {task} reached firm verdict {value} at {} (seq {}) \
                         with only {votes} matching votes tallied, quorum {quorum}",
                        e.at,
                        e.seq
                    );
                }
            }
            self
        }
    }

    /// Pending count assertion for one event kind.
    #[derive(Debug, Clone, Copy)]
    pub struct CountAssert<'a> {
        parent: TraceAssert<'a>,
        kind: EventKind,
        n: usize,
    }

    impl<'a> CountAssert<'a> {
        /// Asserts the count equals `expected`.
        pub fn exactly(&self, expected: usize) -> TraceAssert<'a> {
            assert!(
                self.n == expected,
                "expected exactly {expected} {} events, found {}",
                self.kind.name(),
                self.n
            );
            self.parent
        }

        /// Asserts the count is at least `min`.
        pub fn at_least(&self, min: usize) -> TraceAssert<'a> {
            assert!(
                self.n >= min,
                "expected at least {min} {} events, found {}",
                self.kind.name(),
                self.n
            );
            self.parent
        }

        /// Asserts the count is at most `max`.
        pub fn at_most(&self, max: usize) -> TraceAssert<'a> {
            assert!(
                self.n <= max,
                "expected at most {max} {} events, found {}",
                self.kind.name(),
                self.n
            );
            self.parent
        }

        /// The raw count, for ad-hoc arithmetic.
        pub fn get(&self) -> usize {
            self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(units: f64) -> SimTime {
        SimTime::from_units(units)
    }

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            RunEvent::WaveOpened {
                task: 0,
                wave: 1,
                jobs: 3,
            },
        );
        j.record(
            t(0.0),
            RunEvent::JobDispatched {
                job: 0,
                task: 0,
                node: 2,
                eta: t(1.0),
            },
        );
        j.record(
            t(1.0),
            RunEvent::JobReturned {
                job: 0,
                task: 0,
                node: 2,
                value: true,
            },
        );
        j.record(
            t(1.0),
            RunEvent::VoteTallied {
                task: 0,
                value: true,
                leader_count: 1,
                runner_up: 0,
            },
        );
        j.record(
            t(2.0),
            RunEvent::JobTimedOut {
                job: 1,
                task: 0,
                node: 3,
            },
        );
        j.record(
            t(2.0),
            RunEvent::JobRetried {
                task: 0,
                attempt: 1,
            },
        );
        j.record(t(3.0), RunEvent::NodeQuarantined { node: 3 });
        j.record(t(4.0), RunEvent::NodeReleased { node: 3 });
        j.record(
            t(5.0),
            RunEvent::VerdictReached {
                task: 0,
                value: true,
                degraded: false,
                confidence: 1.0,
            },
        );
        j.record(t(5.0), RunEvent::RunEnded);
        j
    }

    #[test]
    fn queries_filter_and_window() {
        let j = sample_journal();
        assert_eq!(j.len(), 10);
        assert_eq!(j.for_task(0).count(), 7);
        assert_eq!(j.for_node(3).count(), 3);
        assert_eq!(j.count(EventKind::JobRetried), 1);
        assert_eq!(j.between(t(1.0), t(2.0)).len(), 4);
        assert_eq!(j.between(t(9.0), t(10.0)).len(), 0);
        assert_eq!(j.task_timeline(0).len(), 7);
        assert_eq!(j.task_timeline(5).len(), 0);
    }

    #[test]
    fn jsonl_round_trips_losslessly() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let restored = Journal::from_jsonl(&text).unwrap();
        assert_eq!(restored.events(), j.events());
        assert_eq!(restored.digest(), j.digest());
        assert_eq!(restored.to_jsonl(), text);
    }

    #[test]
    fn merge_of_one_shard_is_the_identity() {
        let j = sample_journal();
        let merged = Journal::merge_sharded(std::slice::from_ref(&j));
        assert_eq!(merged.events(), j.events());
        assert_eq!(merged.digest(), j.digest());
    }

    #[test]
    fn merge_orders_by_time_then_shard_then_seq_and_resequences() {
        let mut a = Journal::new();
        a.record(
            t(0.0),
            RunEvent::WaveOpened {
                task: 0,
                wave: 1,
                jobs: 1,
            },
        );
        a.record(t(2.0), RunEvent::TaskCapped { task: 0 });
        let mut b = Journal::new();
        b.record(
            t(0.0),
            RunEvent::WaveOpened {
                task: 1,
                wave: 1,
                jobs: 1,
            },
        );
        b.record(t(1.0), RunEvent::TaskCapped { task: 1 });
        let merged = Journal::merge_sharded(&[a.clone(), b.clone()]);
        let tasks: Vec<Option<u32>> = merged.events().iter().map(|e| e.event.task()).collect();
        // t=0: shard 0 before shard 1; then b's t=1 before a's t=2.
        assert_eq!(tasks, vec![Some(0), Some(1), Some(1), Some(0)]);
        let seqs: Vec<u64> = merged.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Determinism: merging again gives byte-identical output.
        assert_eq!(
            merged.to_jsonl(),
            Journal::merge_sharded(&[a, b]).to_jsonl()
        );
    }

    #[test]
    fn merge_is_time_ordered_for_interleaved_shards() {
        let mut shards = Vec::new();
        for s in 0..4u64 {
            let mut j = Journal::new();
            for i in 0..10u64 {
                j.record(
                    t((i * 3 + s) as f64),
                    RunEvent::WaveOpened {
                        task: (s * 100 + i) as u32,
                        wave: 1,
                        jobs: 1,
                    },
                );
            }
            shards.push(j);
        }
        let merged = Journal::merge_sharded(&shards);
        assert_eq!(merged.len(), 40);
        assert!(merged.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(merged
            .events()
            .iter()
            .enumerate()
            .all(|(i, e)| e.seq == i as u64));
    }

    #[test]
    fn batched_wal_writes_every_record_and_commit_flushes_the_tail() {
        let path = std::env::temp_dir().join(format!(
            "smartred-journal-batch-{}.wal.jsonl",
            std::process::id()
        ));
        let j = sample_journal();
        let mut wal = WalWriter::create(&path, true).unwrap().with_batch(4);
        for e in j.events() {
            wal.append(e).unwrap();
        }
        // Every record is written and flushed regardless of the batch:
        // the file equals the journal byte for byte even before commit.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, j.to_jsonl());
        wal.commit().unwrap();
        wal.commit().unwrap(); // idempotent with nothing pending
        let restored = Journal::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(restored.events(), j.events());
        let _ = std::fs::remove_file(&path);
    }

    fn supervision_journal() -> Journal {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            RunEvent::WorkerCrashed {
                node: 1,
                job: 7,
                task: 3,
            },
        );
        j.record(
            t(0.5),
            RunEvent::WorkerRestarted {
                node: 1,
                incarnation: 2,
            },
        );
        j.record(t(1.0), RunEvent::EpochAdvanced { task: 3, epoch: 1 });
        j.record(
            t(1.5),
            RunEvent::StaleReplyDropped {
                job: 7,
                task: 3,
                epoch: 0,
            },
        );
        j.record(
            t(2.0),
            RunEvent::TaskPoisoned {
                task: 3,
                crashes: 3,
            },
        );
        j.record(t(2.0), RunEvent::RunEnded);
        j
    }

    #[test]
    fn supervision_events_round_trip_and_digest() {
        let j = supervision_journal();
        let text = j.to_jsonl();
        let restored = Journal::from_jsonl(&text).unwrap();
        assert_eq!(restored.events(), j.events());
        assert_eq!(restored.digest(), j.digest());
        assert_eq!(j.count(EventKind::WorkerCrashed), 1);
        assert_eq!(j.count(EventKind::WorkerRestarted), 1);
        assert_eq!(j.count(EventKind::TaskPoisoned), 1);
        assert_eq!(j.count(EventKind::StaleReplyDropped), 1);
        assert_eq!(j.count(EventKind::EpochAdvanced), 1);
        // Accessors see through the new variants.
        assert_eq!(j.for_task(3).count(), 4);
        assert_eq!(j.for_node(1).count(), 2);
    }

    #[test]
    fn prefix_parse_drops_only_a_torn_tail() {
        let j = sample_journal();
        let text = j.to_jsonl();

        // Intact log: nothing torn, everything recovered.
        let whole = Journal::from_jsonl_prefix(&text).unwrap();
        assert!(!whole.torn);
        assert_eq!(whole.valid_bytes, text.len());
        assert_eq!(whole.journal.events(), j.events());

        // Chop anywhere inside the final record: that record is dropped,
        // the rest survives, and valid_bytes points at the intact prefix.
        let last_line_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        for cut in last_line_start + 1..text.len() {
            let prefix = Journal::from_jsonl_prefix(&text[..cut]).unwrap();
            assert!(prefix.torn, "cut at {cut} should be torn");
            assert_eq!(prefix.valid_bytes, last_line_start);
            assert_eq!(prefix.journal.len(), j.len() - 1);
        }

        // A complete final record missing only its newline is still torn:
        // the writer died before the terminator hit the disk.
        let unterminated = &text[..text.len() - 1];
        let prefix = Journal::from_jsonl_prefix(unterminated).unwrap();
        assert!(prefix.torn);
        assert_eq!(prefix.journal.len(), j.len() - 1);

        // Corruption before the tail is a hard error, not a torn write.
        let mut corrupt = String::from("garbage\n");
        corrupt.push_str(&text);
        assert!(Journal::from_jsonl_prefix(&corrupt).is_err());
    }

    #[test]
    fn wal_writer_appends_resume_after_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "smartred-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.wal");
        let j = sample_journal();

        // Append all but the last event durably, then fake a torn tail.
        let mut w = WalWriter::create(&path, false).unwrap();
        for e in &j.events()[..j.len() - 1] {
            w.append(e).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"at\":9999,\"seq");
        std::fs::write(&path, &bytes).unwrap();

        // Recover: the torn fragment is dropped, and resume() truncates it.
        let text = String::from_utf8(bytes).unwrap();
        let prefix = Journal::from_jsonl_prefix(&text).unwrap();
        assert!(prefix.torn);
        assert_eq!(prefix.journal.len(), j.len() - 1);
        let mut w = WalWriter::resume(&path, prefix.valid_bytes as u64, false).unwrap();
        w.append(&j.events()[j.len() - 1]).unwrap();
        drop(w);

        // The healed file is byte-identical to a clean serialization.
        let healed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(healed, j.to_jsonl());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_lines_round_trip_and_interleave_with_legacy() {
        let j = sample_journal();
        let mut text = String::new();
        for (i, e) in j.events().iter().enumerate() {
            // Alternate framings in one stream: readers verify whatever
            // each line carries.
            if i % 2 == 0 {
                text.push_str(&e.to_jsonl_line_checksummed());
            } else {
                text.push_str(&e.to_jsonl_line());
            }
            text.push('\n');
        }
        let restored = Journal::from_jsonl(&text).unwrap();
        assert_eq!(restored.events(), j.events());
        let prefix = Journal::from_jsonl_prefix(&text).unwrap();
        assert!(!prefix.torn);
        assert_eq!(prefix.journal.events(), j.events());
    }

    #[test]
    fn checksum_mismatch_names_the_stated_and_actual_hashes() {
        let e = sample_journal().events()[0];
        let line = e.to_jsonl_line_checksummed();
        // Corrupt one content byte while keeping the line structurally
        // valid JSON: flip a digit of the "at" value.
        let tampered = line.replacen("\"at\":0", "\"at\":1", 1);
        assert_ne!(tampered, line);
        let err = Stamped::from_jsonl_line(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // A damaged trailer is also refused, not skipped as unknown.
        let clipped = line.replace("\"crc\":\"", "\"crx\":\"");
        let err = Stamped::from_jsonl_line(&clipped).unwrap_err();
        assert!(err.contains("canonical"), "{err}");
    }

    #[test]
    fn interior_corruption_reports_byte_offset_and_seq() {
        let j = sample_journal();
        let mut text = String::new();
        for e in j.events() {
            text.push_str(&e.to_jsonl_line_checksummed());
            text.push('\n');
        }
        // Damage the third record (seq 2) in place.
        let lines: Vec<&str> = text.lines().collect();
        let expected_offset = lines[0].len() + lines[1].len() + 2;
        let damaged = text.replacen("\"value\":true", "\"value\":false", 1);
        assert_ne!(damaged, text, "sample journal has a value field");
        let err = Journal::from_jsonl_prefix(&damaged).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.offset, expected_offset);
        assert_eq!(err.seq, Some(2));
        let shown = err.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(
            shown.contains(&format!("byte {expected_offset}")),
            "{shown}"
        );
        assert!(shown.contains("seq 2"), "{shown}");
    }

    #[test]
    fn corrupt_final_terminated_record_is_refused_not_torn() {
        let j = sample_journal();
        let mut text = String::new();
        for e in j.events() {
            text.push_str(&e.to_jsonl_line_checksummed());
            text.push('\n');
        }
        // Flip content inside the FINAL record but keep its newline: the
        // record was fully written and then damaged in place, which must
        // be corruption — only a missing newline may be treated as torn.
        let last_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        let mut damaged = text.clone();
        // RunEnded's checksummed line ends ...,"crc":"<hex>"}; flip one
        // hex digit's case-insensitive value by replacing the at field.
        damaged.replace_range(last_start + 7..last_start + 8, "9");
        assert_ne!(damaged, text);
        let err = Journal::from_jsonl_prefix(&damaged).unwrap_err();
        assert_eq!(err.line, j.len());
        // Without the trailing newline the same damage is a torn tail.
        let torn_text = &damaged[..damaged.len() - 1];
        let prefix = Journal::from_jsonl_prefix(torn_text).unwrap();
        assert!(prefix.torn);
        assert_eq!(prefix.journal.len(), j.len() - 1);
    }

    #[test]
    fn fsync_failure_poisons_the_writer_for_good() {
        use crate::disk::{DiskFaultPlan, FaultyDisk};
        let path =
            std::env::temp_dir().join(format!("smartred-wal-poison-{}.jsonl", std::process::id()));
        let plan = DiskFaultPlan {
            seed: 5,
            fail_fsync_at: Some(2),
            ..DiskFaultPlan::default()
        };
        let disk = Box::new(FaultyDisk::create(&path, plan).unwrap());
        let mut w = WalWriter::with_disk(disk, true);
        let j = sample_journal();
        w.append(&j.events()[0]).unwrap();
        let err = w.append(&j.events()[1]).unwrap_err();
        assert!(err.to_string().contains("injected disk fault"), "{err}");
        // Every later operation fails fast with the original cause —
        // the disk itself recovered, but the writer must never trust it
        // again (the failed fsync may have dropped acknowledged pages).
        for e in &j.events()[2..] {
            let err = w.append(e).unwrap_err();
            assert!(err.to_string().contains("poisoned"), "{err}");
            assert!(err.to_string().contains("injected disk fault"), "{err}");
        }
        assert!(w.commit().unwrap_err().to_string().contains("poisoned"));
        assert!(w.truncate().unwrap_err().to_string().contains("poisoned"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_boundary_crash_never_surfaces_a_mid_batch_prefix_as_clean() {
        // Group commit with batch 16: records 1..=16 were fsynced, 17..24
        // were written + flushed but NOT synced when the process dies.
        // Power loss may then keep any byte prefix of the unsynced tail.
        // The torn-tail contract must hold at every such cut: recovery
        // returns exactly the whole records before the cut, reports torn
        // for any mid-record cut, and never resumes past a partial
        // record — a mid-batch prefix is only "clean" at a record
        // boundary.
        let path = std::env::temp_dir().join(format!(
            "smartred-wal-batch-tear-{}.jsonl",
            std::process::id()
        ));
        let mut w = WalWriter::create(&path, true).unwrap().with_batch(16);
        let mut j = Journal::new();
        for i in 0..24u64 {
            j.record(
                SimTime::from_micros(i),
                RunEvent::WaveOpened {
                    task: i as u32,
                    wave: 1,
                    jobs: 3,
                },
            );
        }
        for e in j.events() {
            w.append(e).unwrap();
        }
        drop(w); // crash between flush and the batch's fsync
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, j.to_jsonl(), "every record was written + flushed");
        let synced_boundary: usize = text.lines().take(16).map(|l| l.len() + 1).sum();
        let mut boundaries = vec![0usize];
        let mut acc = 0usize;
        for l in text.lines() {
            acc += l.len() + 1;
            boundaries.push(acc);
        }
        for cut in synced_boundary..=text.len() {
            let prefix = Journal::from_jsonl_prefix(&text[..cut]).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(prefix.journal.len(), whole, "cut at {cut}");
            assert_eq!(prefix.torn, !at_boundary, "cut at {cut}");
            assert_eq!(
                prefix.valid_bytes,
                *boundaries.iter().rfind(|&&b| b <= cut).unwrap(),
                "cut at {cut}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_starts_a_fresh_segment() {
        let path = std::env::temp_dir().join(format!(
            "smartred-wal-truncate-{}.jsonl",
            std::process::id()
        ));
        let j = sample_journal();
        let mut w = WalWriter::create(&path, true).unwrap().with_checksums(true);
        for e in &j.events()[..4] {
            w.append(e).unwrap();
        }
        w.truncate().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        // Appends after truncation land at offset zero, not at the old
        // end-of-file position.
        w.append(&j.events()[4]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let restored = Journal::from_jsonl(&text).unwrap();
        assert_eq!(restored.events(), &j.events()[4..5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_changes_with_any_field() {
        let j = sample_journal();
        let mut k = sample_journal();
        k.record(t(6.0), RunEvent::RunEnded);
        assert_ne!(j.digest(), k.digest());

        let mut shifted = Journal::new();
        for e in j.events() {
            shifted.record(e.at + crate::time::SimDuration::from_micros(1), e.event);
        }
        assert_ne!(shifted.digest(), j.digest());
        assert_eq!(j.digest_hex().len(), 16);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::disabled();
        j.record(t(1.0), RunEvent::RunEnded);
        assert!(j.is_empty());
        assert!(!j.is_enabled());
        assert!(Journal::new().is_enabled());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Journal::from_jsonl("not json").is_err());
        assert!(Journal::from_jsonl("{\"at\":0,\"seq\":0,\"kind\":\"no_such\"}").is_err());
        assert!(Journal::from_jsonl("{\"at\":0,\"kind\":\"run_ended\"}").is_err());
        // Out-of-order times are rejected on load.
        let bad = "{\"at\":5,\"seq\":0,\"kind\":\"run_ended\"}\n{\"at\":1,\"seq\":1,\"kind\":\"run_ended\"}\n";
        let err = Journal::from_jsonl(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn assert_dsl_passes_on_well_formed_journal() {
        let j = sample_journal();
        assert::that(&j)
            .time_ordered()
            .retry_follows_timeout()
            .no_dispatch_to_quarantined()
            .waves_well_formed()
            .count(EventKind::VerdictReached)
            .exactly(1)
            .count(EventKind::JobDispatched)
            .at_least(1)
            .count(EventKind::TaskCapped)
            .at_most(0)
            .never("no joins in this run", |e| {
                matches!(e.event, RunEvent::NodeJoined { .. })
            })
            .each_followed_by(
                "every dispatch resolves",
                |e| matches!(e.event, RunEvent::JobDispatched { .. }),
                |d, later| match (d.event, later.event) {
                    (
                        RunEvent::JobDispatched { job, .. },
                        RunEvent::JobReturned { job: j2, .. },
                    )
                    | (
                        RunEvent::JobDispatched { job, .. },
                        RunEvent::JobTimedOut { job: j2, .. },
                    ) => job == j2,
                    _ => false,
                },
            );
    }

    #[test]
    #[should_panic(expected = "dispatched to quarantined node")]
    fn dispatch_to_quarantined_node_is_caught() {
        let mut j = Journal::new();
        j.record(t(0.0), RunEvent::NodeQuarantined { node: 4 });
        j.record(
            t(1.0),
            RunEvent::JobDispatched {
                job: 0,
                task: 0,
                node: 4,
                eta: t(2.0),
            },
        );
        assert::that(&j).no_dispatch_to_quarantined();
    }

    #[test]
    #[should_panic(expected = "uncaused event")]
    fn orphan_retry_is_caught() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            RunEvent::JobRetried {
                task: 1,
                attempt: 1,
            },
        );
        assert::that(&j).retry_follows_timeout();
    }

    #[test]
    #[should_panic(expected = "expected exactly")]
    fn wrong_count_is_caught() {
        let j = sample_journal();
        assert::that(&j).count(EventKind::RunEnded).exactly(2);
    }

    #[test]
    fn assert_dsl_accepts_raw_event_slices() {
        // The same checks against a bare slice — no Journal required, as a
        // wall-clock event source (the live runtime) would use it.
        let j = sample_journal();
        let slice: Vec<Stamped> = j.events().to_vec();
        assert::events(&slice)
            .time_ordered()
            .retry_follows_timeout()
            .waves_well_formed()
            .count(EventKind::JobRetried)
            .exactly(1);
        assert_eq!(assert::events(&slice).events().len(), j.len());
    }

    #[test]
    fn quorum_invariant_accepts_enough_votes() {
        let mut j = Journal::new();
        for i in 0..3u32 {
            j.record(
                t(f64::from(i)),
                RunEvent::VoteTallied {
                    task: 7,
                    value: true,
                    leader_count: i + 1,
                    runner_up: 0,
                },
            );
        }
        j.record(
            t(3.0),
            RunEvent::VerdictReached {
                task: 7,
                value: true,
                degraded: false,
                confidence: 1.0,
            },
        );
        assert::that(&j).verdicts_have_quorum(3);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn quorum_invariant_rejects_short_vote_trail() {
        let mut j = Journal::new();
        // Two votes for the winning value, one for the loser: quorum 3 fails.
        j.record(
            t(0.0),
            RunEvent::VoteTallied {
                task: 1,
                value: true,
                leader_count: 1,
                runner_up: 0,
            },
        );
        j.record(
            t(1.0),
            RunEvent::VoteTallied {
                task: 1,
                value: false,
                leader_count: 1,
                runner_up: 1,
            },
        );
        j.record(
            t(2.0),
            RunEvent::VoteTallied {
                task: 1,
                value: true,
                leader_count: 2,
                runner_up: 1,
            },
        );
        j.record(
            t(3.0),
            RunEvent::VerdictReached {
                task: 1,
                value: true,
                degraded: false,
                confidence: 1.0,
            },
        );
        assert::that(&j).verdicts_have_quorum(3);
    }

    #[test]
    fn quorum_invariant_skips_degraded_verdicts() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            RunEvent::VerdictReached {
                task: 2,
                value: false,
                degraded: true,
                confidence: 0.8,
            },
        );
        assert::that(&j).verdicts_have_quorum(5);
    }
}
