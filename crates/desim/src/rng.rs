//! Deterministic random-number streams for reproducible experiments.
//!
//! Every stochastic component of the simulation stack takes an explicit
//! seed. [`seeded_rng`] gives the root stream; [`substream`] derives
//! statistically independent child streams (e.g. one per node) so adding a
//! consumer never perturbs the draws of another — experiments stay
//! comparable across configurations.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::SimDuration;

/// The PRNG used throughout the simulation stack.
pub type SimRng = ChaCha8Rng;

/// Creates the root random stream for a run.
pub fn seeded_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derives an independent child stream from a root seed and a stream id.
///
/// Uses SplitMix64 finalization to decorrelate `(seed, stream)` pairs before
/// seeding ChaCha, so adjacent ids do not produce related streams.
pub fn substream(seed: u64, stream: u64) -> SimRng {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SimRng::seed_from_u64(z)
}

/// Samples a value from `range` (convenience re-export of `Rng::gen_range`
/// for call sites that only have this module imported).
pub fn sample<T, R, Rg>(rng: &mut Rg, range: R) -> T
where
    T: SampleUniform,
    R: SampleRange<T>,
    Rg: Rng + ?Sized,
{
    rng.gen_range(range)
}

/// Samples a job duration uniformly from `[lo, hi]` time units — the
/// paper's `U[0.5, 1.5]` with the default window.
///
/// # Panics
///
/// Panics if the window is inverted or negative.
pub fn uniform_duration<Rg: Rng + ?Sized>(rng: &mut Rg, lo: f64, hi: f64) -> SimDuration {
    assert!(
        lo >= 0.0 && hi >= lo,
        "invalid duration window [{lo}, {hi}]"
    );
    if lo == hi {
        return SimDuration::from_units(lo);
    }
    SimDuration::from_units(rng.gen_range(lo..=hi))
}

/// Samples a jittered exponential backoff: `base · multiplier^attempt`,
/// scaled by a uniform draw from `[1 − jitter, 1 + jitter]`.
///
/// Deterministic retry schedules synchronize: every job that timed out in
/// the same outage retries at the same instant and the herd re-collides.
/// The jitter draw (from the run's seeded stream, so still reproducible)
/// spreads the retries out.
///
/// # Panics
///
/// Panics on a non-positive base, a multiplier below 1, or jitter outside
/// `[0, 1]`.
pub fn backoff_duration<Rg: Rng + ?Sized>(
    rng: &mut Rg,
    base_units: f64,
    multiplier: f64,
    attempt: u32,
    jitter: f64,
) -> SimDuration {
    assert!(base_units > 0.0, "backoff base must be positive");
    assert!(multiplier >= 1.0, "backoff multiplier must be >= 1");
    assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
    let nominal = base_units * multiplier.powi(attempt.min(i32::MAX as u32) as i32);
    let scale = if jitter == 0.0 {
        1.0
    } else {
        rng.gen_range(1.0 - jitter..=1.0 + jitter)
    };
    SimDuration::from_units(nominal * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let mut s0 = substream(42, 0);
        let mut s1 = substream(42, 1);
        let v0: u64 = s0.gen();
        let v1: u64 = s1.gen();
        assert_ne!(v0, v1);
        // Re-deriving the same stream reproduces it.
        let mut again = substream(42, 0);
        assert_eq!(again.gen::<u64>(), v0);
    }

    #[test]
    fn uniform_duration_stays_in_window() {
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let d = uniform_duration(&mut rng, 0.5, 1.5);
            assert!(d.as_units() >= 0.5 && d.as_units() <= 1.5);
        }
    }

    #[test]
    fn uniform_duration_mean_is_centered() {
        let mut rng = seeded_rng(4);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| uniform_duration(&mut rng, 0.5, 1.5).as_units())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn degenerate_window_is_constant() {
        let mut rng = seeded_rng(5);
        assert_eq!(
            uniform_duration(&mut rng, 1.0, 1.0),
            SimDuration::from_units(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration window")]
    fn inverted_window_panics() {
        let mut rng = seeded_rng(6);
        uniform_duration(&mut rng, 1.5, 0.5);
    }

    #[test]
    fn sample_helper_delegates() {
        let mut rng = seeded_rng(8);
        for _ in 0..100 {
            let v: u32 = sample(&mut rng, 1..5);
            assert!((1..5).contains(&v));
        }
    }

    #[test]
    fn backoff_doubles_without_jitter() {
        let mut rng = seeded_rng(9);
        let d0 = backoff_duration(&mut rng, 0.5, 2.0, 0, 0.0);
        let d2 = backoff_duration(&mut rng, 0.5, 2.0, 2, 0.0);
        assert_eq!(d0, SimDuration::from_units(0.5));
        assert_eq!(d2, SimDuration::from_units(2.0));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let mut rng = seeded_rng(10);
        for attempt in 0..4 {
            let nominal = 1.0 * 2.0f64.powi(attempt);
            let d = backoff_duration(&mut rng, 1.0, 2.0, attempt as u32, 0.25);
            let units = d.as_units();
            assert!(
                units >= nominal * 0.75 - 1e-9 && units <= nominal * 1.25 + 1e-9,
                "attempt {attempt}: {units} outside band around {nominal}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiplier must be >= 1")]
    fn backoff_rejects_shrinking_multiplier() {
        let mut rng = seeded_rng(11);
        backoff_duration(&mut rng, 1.0, 0.5, 0, 0.0);
    }
}
