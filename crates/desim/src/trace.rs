//! Lightweight run tracing for debugging and analysis.
//!
//! A [`Trace`] collects timestamped, labeled samples as a simulation runs —
//! queue depths, pool utilization, vote margins — and exposes them as time
//! series afterwards. It is deliberately simulation-agnostic: models own a
//! `Trace` inside their state and record into it from event handlers.

use crate::time::SimTime;

/// One recorded sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Series label (interned `&'static str` keeps recording allocation-free).
    pub label: &'static str,
    /// The sampled value.
    pub value: f64,
}

/// An append-only collection of timestamped samples.
///
/// # Examples
///
/// ```
/// use smartred_desim::time::SimTime;
/// use smartred_desim::trace::Trace;
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_units(1.0), "queue_depth", 3.0);
/// trace.record(SimTime::from_units(2.0), "queue_depth", 5.0);
/// let series: Vec<_> = trace.series("queue_depth").collect();
/// assert_eq!(series.len(), 2);
/// assert_eq!(series[1].value, 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    samples: Vec<Sample>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if samples are recorded out of time order —
    /// a discrete-event model's clock is monotone, so that is a bug in the
    /// recording site.
    pub fn record(&mut self, at: SimTime, label: &'static str, value: f64) {
        debug_assert!(
            self.samples.last().map(|s| s.at <= at).unwrap_or(true),
            "trace recorded out of order"
        );
        self.samples.push(Sample { at, label, value });
    }

    /// All samples, in recording (= time) order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates the samples of one series.
    pub fn series<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Sample> + 'a {
        self.samples.iter().filter(move |s| s.label == label)
    }

    /// The labels present, in first-appearance order.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut labels = Vec::new();
        for s in &self.samples {
            if !labels.contains(&s.label) {
                labels.push(s.label);
            }
        }
        labels
    }

    /// The last value of a series, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use smartred_desim::time::SimTime;
    /// use smartred_desim::trace::Trace;
    ///
    /// let mut trace = Trace::new();
    /// trace.record(SimTime::from_units(1.0), "queue_depth", 3.0);
    /// trace.record(SimTime::from_units(2.0), "queue_depth", 5.0);
    /// assert_eq!(trace.last("queue_depth"), Some(5.0));
    /// assert_eq!(trace.last("missing"), None);
    /// ```
    pub fn last(&self, label: &str) -> Option<f64> {
        self.samples
            .iter()
            .rev()
            .find(|s| s.label == label)
            .map(|s| s.value)
    }

    /// Iterates the samples of one series within the closed time window
    /// `[t0, t1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use smartred_desim::time::SimTime;
    /// use smartred_desim::trace::Trace;
    ///
    /// let mut trace = Trace::new();
    /// for i in 0..5 {
    ///     trace.record(SimTime::from_units(i as f64), "idle", i as f64);
    /// }
    /// let window: Vec<f64> = trace
    ///     .between("idle", SimTime::from_units(1.0), SimTime::from_units(3.0))
    ///     .map(|s| s.value)
    ///     .collect();
    /// assert_eq!(window, vec![1.0, 2.0, 3.0]);
    /// ```
    pub fn between<'a>(
        &'a self,
        label: &'a str,
        t0: SimTime,
        t1: SimTime,
    ) -> impl Iterator<Item = &'a Sample> + 'a {
        self.series(label).filter(move |s| s.at >= t0 && s.at <= t1)
    }

    /// Time-weighted mean of a step series between its first sample and
    /// `end`: each sample's value holds until the next sample. Returns
    /// `None` for an empty series or if `end` precedes the first sample.
    pub fn time_weighted_mean(&self, label: &str, end: SimTime) -> Option<f64> {
        let samples: Vec<&Sample> = self.series(label).collect();
        let first = samples.first()?;
        if end < first.at {
            return None;
        }
        let total_span = (end - first.at).as_units();
        if total_span == 0.0 {
            return Some(first.value);
        }
        let mut acc = 0.0;
        for (i, s) in samples.iter().enumerate() {
            let until = samples.get(i + 1).map(|n| n.at.min(end)).unwrap_or(end);
            if until > s.at {
                acc += s.value * (until - s.at).as_units();
            }
        }
        Some(acc / total_span)
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(units: f64) -> SimTime {
        SimTime::from_units(units)
    }

    #[test]
    fn series_are_filtered_by_label() {
        let mut trace = Trace::new();
        trace.record(t(0.0), "a", 1.0);
        trace.record(t(1.0), "b", 2.0);
        trace.record(t(2.0), "a", 3.0);
        assert_eq!(trace.series("a").count(), 2);
        assert_eq!(trace.series("b").count(), 1);
        assert_eq!(trace.labels(), vec!["a", "b"]);
        assert_eq!(trace.last("a"), Some(3.0));
        assert_eq!(trace.last("c"), None);
        assert_eq!(trace.between("a", t(1.0), t(2.0)).count(), 1);
        assert_eq!(trace.between("a", t(0.0), t(2.0)).count(), 2);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
    }

    #[test]
    fn time_weighted_mean_of_step_series() {
        let mut trace = Trace::new();
        // value 0 on [0, 1), value 10 on [1, 2): mean over [0, 2] = 5.
        trace.record(t(0.0), "util", 0.0);
        trace.record(t(1.0), "util", 10.0);
        let mean = trace.time_weighted_mean("util", t(2.0)).unwrap();
        assert!((mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_edge_cases() {
        let trace = Trace::new();
        assert_eq!(trace.time_weighted_mean("x", t(1.0)), None);
        let mut trace = Trace::new();
        trace.record(t(2.0), "x", 7.0);
        assert_eq!(trace.time_weighted_mean("x", t(1.0)), None);
        assert_eq!(trace.time_weighted_mean("x", t(2.0)), Some(7.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of order")]
    fn out_of_order_recording_panics_in_debug() {
        let mut trace = Trace::new();
        trace.record(t(2.0), "x", 1.0);
        trace.record(t(1.0), "x", 2.0);
    }
}
