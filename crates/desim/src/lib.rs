//! # smartred-desim — deterministic discrete-event simulation
//!
//! The paper evaluates its redundancy techniques on XDEVS, a discrete-event
//! simulation framework specialized for software systems (§4.1). XDEVS is
//! not publicly available, so this crate rebuilds the capabilities the
//! experiments rely on:
//!
//! * an event queue ordered by exact integer simulated time
//!   ([`engine::Simulator`]), with insertion-order tie-breaking so runs are
//!   bit-for-bit reproducible;
//! * fixed-point time types ([`time::SimTime`], [`time::SimDuration`]) in
//!   the paper's abstract "time units";
//! * seedable, stream-splittable randomness ([`rng`]) for stochastic job
//!   durations and failures.
//!
//! The DCA model itself (task server, node pool, failure models) lives in
//! `smartred-dca`; this crate is model-agnostic.
//!
//! ## Example
//!
//! ```
//! use smartred_desim::engine::Simulator;
//! use smartred_desim::rng::{seeded_rng, uniform_duration};
//!
//! // Simulate 3 jobs with the paper's U[0.5, 1.5] durations and count
//! // completions.
//! let mut sim: Simulator<u32> = Simulator::new();
//! let mut rng = seeded_rng(11);
//! for _ in 0..3 {
//!     let d = uniform_duration(&mut rng, 0.5, 1.5);
//!     sim.schedule_in(d, |done, _| *done += 1);
//! }
//! let mut done = 0u32;
//! let stats = sim.run(&mut done);
//! assert_eq!(done, 3);
//! assert!(stats.end_time.as_units() <= 1.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod engine;
pub mod journal;
pub mod network;
pub mod rng;
pub mod time;
pub mod trace;

pub use disk::{Disk, DiskFaultPlan, FaultyDisk, RealDisk};
pub use engine::{RunStats, Simulator};
pub use journal::{EventKind, Journal, RunEvent};
pub use network::{LinkSpec, NetworkModel};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
