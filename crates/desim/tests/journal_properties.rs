//! Property-based tests of the journal's core contracts: recording keeps
//! time order, JSONL serialization round-trips losslessly, digests are a
//! pure function of the event stream (and in particular independent of the
//! `SMARTRED_THREADS` parallelism knob), and windowing agrees with a naive
//! filter.

use proptest::prelude::*;
use smartred_desim::journal::{assert as jassert, EventKind, FaultKind, Journal, RunEvent};
use smartred_desim::time::SimTime;

/// Builds a deterministic event from generated scalars. `sel` picks the
/// variant, `a`/`b` fill the integer fields, `v` the booleans; the
/// confidence float is derived from `a` so it is always finite and in
/// `[0, 1]`.
fn event_from(sel: u8, a: u32, b: u32, v: bool) -> RunEvent {
    match sel % 31 {
        0 => RunEvent::JobDispatched {
            job: a,
            task: b,
            node: a % 97,
            eta: SimTime::from_micros(a as u64 * 7 + 1),
        },
        1 => RunEvent::JobReturned {
            job: a,
            task: b,
            node: a % 97,
            value: v,
        },
        2 => RunEvent::JobTimedOut {
            job: a,
            task: b,
            node: a % 97,
        },
        3 => RunEvent::JobRetried {
            task: b,
            attempt: a % 16 + 1,
        },
        4 => RunEvent::WaveOpened {
            task: b,
            wave: a % 8 + 1,
            jobs: a % 32 + 1,
        },
        5 => RunEvent::WaveClosed {
            task: b,
            wave: a % 8 + 1,
        },
        6 => RunEvent::VoteTallied {
            task: b,
            value: v,
            leader_count: a % 64,
            runner_up: a % 17,
        },
        7 => RunEvent::NodeQuarantined { node: a % 97 },
        8 => RunEvent::NodeReleased { node: a % 97 },
        9 => RunEvent::VerdictReached {
            task: b,
            value: v,
            degraded: a.is_multiple_of(2),
            confidence: (a % 1001) as f64 / 1000.0,
        },
        10 => RunEvent::TaskCapped { task: b },
        11 => RunEvent::OutageStarted { region: a % 5 },
        12 => RunEvent::WorkerCrashed {
            node: a % 97,
            job: a,
            task: b,
        },
        13 => RunEvent::WorkerRestarted {
            node: a % 97,
            incarnation: a % 16 + 1,
        },
        14 => RunEvent::TaskPoisoned {
            task: b,
            crashes: a % 8 + 1,
        },
        15 => RunEvent::StaleReplyDropped {
            job: a,
            task: b,
            epoch: a % 9,
        },
        16 => RunEvent::EpochAdvanced {
            task: b,
            epoch: a % 9 + 1,
        },
        17 => RunEvent::AuditScheduled { task: b },
        18 => RunEvent::AuditPassed { task: b },
        19 => RunEvent::AuditFailed {
            task: b,
            node: a % 97,
        },
        20 => RunEvent::VerdictVoided { task: b },
        21 => RunEvent::TaskRetallied { task: b },
        22 => RunEvent::HedgeLaunched {
            job: a,
            task: b,
            origin: a / 2,
            epoch: a % 9,
        },
        23 => RunEvent::HedgeWon { job: a, task: b },
        24 => RunEvent::HedgeWasted { job: a, task: b },
        25 => RunEvent::TransferStarted {
            xfer: a,
            job: a / 2,
            task: b,
            node: a % 97,
            bytes: u64::from(a) * 512,
            eta: SimTime::from_micros(a as u64 * 13 + 1),
        },
        26 => RunEvent::TransferCompleted {
            xfer: a,
            job: a / 2,
            task: b,
            node: a % 97,
        },
        27 => RunEvent::StageDecided {
            stage: a % 9,
            correct: a % 33,
            wrong: a % 7,
        },
        28 => RunEvent::PoisonPropagated {
            task: b,
            stage: a % 9 + 1,
            from: a % 10_000,
        },
        29 => RunEvent::CheckpointTaken {
            events: u64::from(a),
            digest: u64::from(a).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(b),
        },
        _ => RunEvent::FaultInjected {
            kind: match a % 6 {
                0 => FaultKind::Crash,
                1 => FaultKind::Hang,
                2 => FaultKind::Straggler,
                3 => FaultKind::Collusion,
                4 => FaultKind::Blackout,
                _ => FaultKind::Cartel,
            },
        },
    }
}

/// Records the generated events with non-decreasing timestamps.
fn build_journal(entries: &[(u64, u8, u32, u32, bool)]) -> Journal {
    let mut journal = Journal::new();
    let mut at = 0u64;
    for &(delta, sel, a, b, v) in entries {
        at += delta;
        journal.record(SimTime::from_micros(at), event_from(sel, a, b, v));
    }
    journal
}

proptest! {
    /// Recording with a monotone clock yields a time-ordered journal with
    /// strictly increasing sequence numbers.
    #[test]
    fn journals_are_time_ordered(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            1..80,
        ),
    ) {
        let journal = build_journal(&entries);
        prop_assert_eq!(journal.len(), entries.len());
        jassert::that(&journal).time_ordered();
    }

    /// JSONL round-trips losslessly: same events, same digest, and the
    /// re-serialized text is byte-identical.
    #[test]
    fn jsonl_round_trips_losslessly(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            0..80,
        ),
    ) {
        let journal = build_journal(&entries);
        let text = journal.to_jsonl();
        let restored = Journal::from_jsonl(&text).unwrap();
        prop_assert_eq!(restored.events(), journal.events());
        prop_assert_eq!(restored.digest(), journal.digest());
        prop_assert_eq!(restored.to_jsonl(), text);
    }

    /// The digest is a pure function of the event stream: recomputing it,
    /// and recomputing it under different `SMARTRED_THREADS` settings,
    /// always yields the same value — journal recording never consults the
    /// parallelism knob.
    #[test]
    fn digest_is_thread_setting_invariant(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            0..60,
        ),
    ) {
        let mut digests = Vec::new();
        for threads in ["1", "8"] {
            std::env::set_var("SMARTRED_THREADS", threads);
            let journal = build_journal(&entries);
            digests.push(journal.digest());
        }
        std::env::remove_var("SMARTRED_THREADS");
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(digests[0], build_journal(&entries).digest());
    }

    /// `between` returns exactly the events a naive scan selects.
    #[test]
    fn windowing_agrees_with_naive_filter(
        entries in proptest::collection::vec(
            (0u64..300, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            1..60,
        ),
        bounds in (0u64..20_000, 0u64..20_000),
    ) {
        let journal = build_journal(&entries);
        let (a, b) = bounds;
        let (t0, t1) = (SimTime::from_micros(a.min(b)), SimTime::from_micros(a.max(b)));
        let window: Vec<_> = journal.between(t0, t1).to_vec();
        let naive: Vec<_> = journal
            .events()
            .iter()
            .filter(|e| e.at >= t0 && e.at <= t1)
            .copied()
            .collect();
        prop_assert_eq!(window, naive);
    }

    /// Kind/task/node filters partition consistently with raw counts.
    #[test]
    fn filters_are_consistent_with_counts(
        entries in proptest::collection::vec(
            (0u64..300, 0u8..31, 0u32..10_000, 0u32..8, proptest::bool::ANY),
            1..60,
        ),
    ) {
        let journal = build_journal(&entries);
        let by_kind: usize = [
            EventKind::JobDispatched,
            EventKind::JobReturned,
            EventKind::JobTimedOut,
            EventKind::JobRetried,
            EventKind::WaveOpened,
            EventKind::WaveClosed,
            EventKind::VoteTallied,
            EventKind::NodeQuarantined,
            EventKind::NodeReleased,
            EventKind::VerdictReached,
            EventKind::TaskCapped,
            EventKind::OutageStarted,
            EventKind::WorkerCrashed,
            EventKind::WorkerRestarted,
            EventKind::TaskPoisoned,
            EventKind::StaleReplyDropped,
            EventKind::EpochAdvanced,
            EventKind::AuditScheduled,
            EventKind::AuditPassed,
            EventKind::AuditFailed,
            EventKind::VerdictVoided,
            EventKind::TaskRetallied,
            EventKind::HedgeLaunched,
            EventKind::HedgeWon,
            EventKind::HedgeWasted,
            EventKind::TransferStarted,
            EventKind::TransferCompleted,
            EventKind::StageDecided,
            EventKind::PoisonPropagated,
            EventKind::CheckpointTaken,
            EventKind::FaultInjected,
        ]
        .iter()
        .map(|&k| journal.count(k))
        .sum();
        prop_assert_eq!(by_kind, journal.len());
        for task in 0..8u32 {
            let timeline = journal.task_timeline(task);
            prop_assert_eq!(timeline.len(), journal.for_task(task).count());
            for e in timeline {
                prop_assert_eq!(e.event.task(), Some(task));
            }
        }
    }

    /// The WAL torn-tail contract: cutting a serialized journal anywhere
    /// inside (or just before the newline of) its final record yields a
    /// prefix parse that recovers every earlier record exactly, flags the
    /// tail as torn, and reports `valid_bytes` at the last whole-record
    /// boundary — the truncate-and-resume point. A cut exactly on the
    /// record boundary is a clean (untorn) shorter journal, and the
    /// untruncated text parses whole.
    #[test]
    fn wal_prefix_survives_any_truncation_of_the_final_record(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            1..40,
        ),
        cut_seed in 0usize..10_000,
    ) {
        let journal = build_journal(&entries);
        let text = journal.to_jsonl();
        let last_line_start = text[..text.len() - 1].rfind('\n').map_or(0, |i| i + 1);
        // A cut anywhere from "final record entirely missing" through
        // "only its trailing newline missing" (JSONL is pure ASCII, so
        // every byte offset is a char boundary).
        let cut = last_line_start + cut_seed % (text.len() - last_line_start);
        let prefix = Journal::from_jsonl_prefix(&text[..cut]).unwrap();
        prop_assert_eq!(prefix.torn, cut > last_line_start);
        prop_assert_eq!(prefix.valid_bytes, last_line_start);
        prop_assert_eq!(
            prefix.journal.events(),
            &journal.events()[..journal.len() - 1]
        );
        prop_assert_eq!(&prefix.journal.to_jsonl(), &text[..last_line_start]);

        let whole = Journal::from_jsonl_prefix(&text).unwrap();
        prop_assert!(!whole.torn);
        prop_assert_eq!(whole.valid_bytes, text.len());
        prop_assert_eq!(whole.journal.events(), journal.events());
    }

    /// Checksummed framing round-trips every event variant losslessly:
    /// each stamped record re-parses identically whether serialized with
    /// or without its `crc` trailer, and a whole checksummed WAL restores
    /// the original journal through both the strict and the prefix parser.
    #[test]
    fn checksummed_records_round_trip_for_every_variant(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            1..60,
        ),
    ) {
        let journal = build_journal(&entries);
        let mut text = String::new();
        for e in journal.events() {
            let line = e.to_jsonl_line_checksummed();
            // Per-record: the checksummed line parses back to the same
            // stamped event the plain line does.
            let via_crc = smartred_desim::journal::Stamped::from_jsonl_line(&line).unwrap();
            prop_assert_eq!(&via_crc, e);
            text.push_str(&line);
            text.push('\n');
        }
        let restored = Journal::from_jsonl(&text).unwrap();
        prop_assert_eq!(restored.events(), journal.events());
        prop_assert_eq!(restored.digest(), journal.digest());
        let prefix = Journal::from_jsonl_prefix(&text).unwrap();
        prop_assert!(!prefix.torn);
        prop_assert_eq!(prefix.valid_bytes, text.len());
        prop_assert_eq!(prefix.journal.events(), journal.events());
    }

    /// Any single bit flip inside a non-final record of a checksummed WAL
    /// is detected: recovery refuses the segment with a parse error — it
    /// never silently accepts the damage or decodes it as a different
    /// valid event. (A flip that lands on a newline merges or splits
    /// lines; the damaged line is still newline-terminated, so it is
    /// corruption, not a torn tail.)
    #[test]
    fn any_bit_flip_in_a_nonfinal_record_is_detected(
        entries in proptest::collection::vec(
            (0u64..500, 0u8..31, 0u32..10_000, 0u32..64, proptest::bool::ANY),
            2..30,
        ),
        flip_seed in 0u64..u64::MAX,
    ) {
        let journal = build_journal(&entries);
        let mut text = String::new();
        for e in journal.events() {
            text.push_str(&e.to_jsonl_line_checksummed());
            text.push('\n');
        }
        // Flip one bit strictly before the final record, so the damage
        // can never be excused as a torn tail.
        let last_line_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        let mut bytes = text.clone().into_bytes();
        let bit = (flip_seed % (last_line_start as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(&bytes, text.as_bytes());
        // A flip can break UTF-8 entirely; refusing at that layer counts
        // as detection too.
        let Ok(damaged) = std::str::from_utf8(&bytes) else { return Ok(()); };
        let result = Journal::from_jsonl_prefix(damaged);
        match result {
            Err(_) => {} // detected and refused — the contract
            Ok(prefix) => {
                // The only acceptable Ok: the flip created blank-line
                // noise the parser skips without inventing records. Any
                // parsed event stream must be exactly the original —
                // never a different valid decoding.
                prop_assert!(
                    !prefix.torn && prefix.journal.events() == journal.events(),
                    "single-bit flip at bit {} silently accepted: {} events vs {}",
                    bit,
                    prefix.journal.len(),
                    journal.len(),
                );
            }
        }
    }
}
