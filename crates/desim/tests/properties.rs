//! Property-based tests of the discrete-event engine's ordering and
//! determinism guarantees.

use proptest::prelude::*;
use smartred_desim::engine::Simulator;
use smartred_desim::time::{SimDuration, SimTime};

proptest! {
    /// Events fire in non-decreasing time order regardless of insertion
    /// order, with ties broken by insertion sequence.
    #[test]
    fn events_fire_sorted_with_stable_ties(
        times in proptest::collection::vec(0u64..50, 1..60),
    ) {
        let mut sim: Simulator<Vec<(u64, usize)>> = Simulator::new();
        for (seq, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), move |log, _| log.push((t, seq)));
        }
        let mut log = Vec::new();
        sim.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated: {pair:?}");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie order violated: {pair:?}");
            }
        }
    }

    /// `run_until` executes exactly the events at or before the deadline
    /// and leaves the rest intact.
    #[test]
    fn run_until_partitions_events(
        times in proptest::collection::vec(0u64..100, 1..40),
        deadline in 0u64..100,
    ) {
        let mut sim: Simulator<usize> = Simulator::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), |count, _| *count += 1);
        }
        let mut fired = 0usize;
        sim.run_until(&mut fired, SimTime::from_micros(deadline));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(fired, expected);
        prop_assert_eq!(sim.pending(), times.len() - expected);
        // Finishing the run fires everything else.
        sim.run(&mut fired);
        prop_assert_eq!(fired, times.len());
    }

    /// Chained scheduling from handlers preserves causality: a handler's
    /// children never fire before their parent.
    #[test]
    fn recursive_scheduling_preserves_causality(
        delays in proptest::collection::vec(1u64..10, 1..12),
    ) {
        let mut sim: Simulator<Vec<usize>> = Simulator::new();
        fn chain(
            idx: usize,
            delays: Vec<u64>,
            model: &mut Vec<usize>,
            sim: &mut Simulator<Vec<usize>>,
        ) {
            model.push(idx);
            if idx + 1 < delays.len() {
                let next = SimDuration::from_micros(delays[idx + 1]);
                sim.schedule_in(next, move |m, s| chain(idx + 1, delays, m, s));
            }
        }
        let first = SimDuration::from_micros(delays[0]);
        let delays_for_chain = delays.clone();
        sim.schedule_in(first, move |m, s| chain(0, delays_for_chain, m, s));
        let mut order = Vec::new();
        let stats = sim.run(&mut order);
        prop_assert_eq!(order, (0..delays.len()).collect::<Vec<_>>());
        let total: u64 = delays.iter().sum();
        prop_assert_eq!(stats.end_time, SimTime::from_micros(total));
    }

    /// Time arithmetic round-trips through micros exactly.
    #[test]
    fn time_roundtrip(micros in 0u64..10_000_000_000) {
        let t = SimTime::from_micros(micros);
        prop_assert_eq!(t.as_micros(), micros);
        let d = SimDuration::from_micros(micros);
        prop_assert_eq!((SimTime::ZERO + d).as_micros(), micros);
        prop_assert_eq!(t - SimTime::ZERO, d);
    }
}
