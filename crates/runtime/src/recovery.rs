//! Coordinator state reconstruction from a write-ahead-log prefix.
//!
//! The coordinator journals every event to its WAL *before* acting on it,
//! so the WAL prefix that survives a crash is a complete record of every
//! decision the dead coordinator durably made. [`rebuild`] replays that
//! prefix through the same deterministic strategy machinery
//! (`core::execution::TaskExecution`) the live coordinator runs, yielding:
//!
//! * every still-open task's exact redundancy state — votes tallied,
//!   replicas abandoned, waves opened — validated against the log (a wave
//!   the strategy would not reopen identically is reported as corruption,
//!   not silently patched);
//! * the set of *decided* tasks (verdict, cap, or poison recorded), which
//!   a restarted coordinator must never re-run or re-deliver — the
//!   exactly-once guarantee is "decision events are WAL-durable before any
//!   side effect";
//! * in-flight jobs (dispatched, never resolved) to re-arm, and opened
//!   replicas never dispatched, to dispatch;
//! * supervision state: per-node strike counters (replayed through
//!   [`NodeDiscipline::strike_at`] at the logged event times), active
//!   quarantines, blacklists, worker incarnations, per-task crash charges,
//!   and replica epochs.
//!
//! Replica indices are not journaled; they are recovered as each job's
//! per-task dispatch ordinal, which is exact because the coordinator
//! dispatches a task's replicas in index order and never journals a
//! re-dispatch. Since fault draws are keyed by `(seed, task, replica)`,
//! a re-armed replica re-executed by the recovered coordinator produces
//! the same vote the uninterrupted run would have — the invariant the
//! chaos tests pin.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use smartred_core::execution::{TaskExecution, WaveStep};
use smartred_core::resilience::{NodeDiscipline, PoisonPolicy, TaskDiscipline};
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::journal::{Journal, JournalParseError, RunEvent};
use smartred_desim::time::{SimDuration, SimTime};
use std::sync::Arc;

use crate::checkpoint::CheckpointState;
use crate::coordinator::RuntimeConfig;
use crate::report::RuntimeReport;

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The configuration carries no WAL path to recover from.
    NoWal,
    /// Reading or reopening the WAL file failed.
    Io(std::io::Error),
    /// A newline-terminated record is malformed — in-place file
    /// corruption, not a torn crash write (only an *unterminated* final
    /// chunk can be a torn append). The damaged segment is renamed to
    /// `<wal>.quarantined` before this is returned; the error carries the
    /// record's line, byte offset, and — when still sniffable — seq.
    Parse(JournalParseError),
    /// The event stream is internally inconsistent (e.g. a logged wave
    /// the strategy would not reopen, or an event for a decided task).
    Corrupt(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoWal => write!(f, "runtime config has no WAL path"),
            RecoveryError::Io(e) => write!(f, "WAL I/O error: {e}"),
            RecoveryError::Parse(e) => write!(f, "WAL corrupt: {e}"),
            RecoveryError::Corrupt(msg) => write!(f, "WAL replay diverged: {msg}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<JournalParseError> for RecoveryError {
    fn from(e: JournalParseError) -> Self {
        RecoveryError::Parse(e)
    }
}

/// What [`crate::Runtime::recover`] did, for observability and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Whether a torn final record was dropped (and truncated on resume).
    pub torn_tail: bool,
    /// Whole events replayed from the WAL prefix (the suffix only, when
    /// a checkpoint bounded the replay).
    pub events_replayed: usize,
    /// Events restored from the checkpoint snapshot instead of replayed
    /// (0 for a full-WAL replay). Checkpointed recovery keeps
    /// `events_replayed` bounded by the checkpoint interval no matter how
    /// long the run was up.
    pub checkpoint_events: u64,
    /// Open tasks whose redundancy state was rebuilt and resumed.
    pub tasks_resumed: usize,
    /// Tasks already decided in the snapshot + prefix (never re-run or
    /// re-delivered).
    pub tasks_decided: usize,
    /// Roster tasks absent from the WAL, admitted fresh under their
    /// original ids.
    pub tasks_seeded: usize,
    /// In-flight jobs re-armed for dispatch without new journal records.
    pub jobs_rearmed: usize,
    /// The recovered coordinator's starting [`RuntimeReport`] —
    /// snapshot + suffix fold, bit-identical to folding the full
    /// pre-crash history.
    pub report: RuntimeReport,
}

/// One open task's reconstructed state.
pub(crate) struct RebuiltTask<S> {
    /// The strategy execution, replayed to the exact logged point.
    pub exec: TaskExecution<bool, Arc<S>>,
    /// Replica indices issued (Σ opened-wave sizes).
    pub replicas: u32,
    /// The dispatch cursor: the replica ordinal the next dispatch will
    /// use; indices `dispatched..replicas` are still pending dispatch.
    /// (A void/re-tally jumps the cursor past its purged pending indices
    /// so ordinals — and hence fault draws — never repeat.)
    pub dispatched: u32,
    /// Timeouts charged so far (resumes the 1-based retry attempts).
    pub timeouts: u32,
    /// Worker-crash charges toward the poison limit.
    pub poison: TaskDiscipline,
    /// Current replica epoch (last `EpochAdvanced`, else 0).
    pub epoch: u32,
    /// Stamp of the task's first dispatch, for verdict latency.
    pub first_dispatch: Option<SimTime>,
    /// Dispatched-but-unresolved jobs as `(job, replica)`, in dispatch
    /// order — to re-arm without new journal records.
    pub in_flight: Vec<(u32, u32)>,
    /// Tallied returns of the current attempt as `(job, node, vote)` —
    /// the audit layer's evidence, cleared by a replayed void/re-tally.
    pub returns: Vec<(u32, u32, bool)>,
    /// Whether a probationary node's result has flagged the task for a
    /// mandatory audit that has not yet concluded clean.
    pub must_audit: bool,
}

/// Everything [`rebuild`] recovers from the WAL prefix.
pub(crate) struct Rebuilt<S> {
    /// Open tasks by id.
    pub open: HashMap<u32, RebuiltTask<S>>,
    /// Decided task ids (verdict, cap, or poison already durable).
    pub decided: HashSet<u32>,
    /// Next fresh job id (max dispatched + 1).
    pub next_job: u32,
    /// Highest task id seen, if any.
    pub max_task: Option<u32>,
    /// Per-node strike state, replayed at logged event times.
    pub discipline: HashMap<u32, NodeDiscipline>,
    /// Per-node restart incarnation high-water marks.
    pub incarnations: HashMap<u32, u32>,
    /// Nodes quarantined at the crash point, with their release stamps.
    pub quarantined_until: HashMap<u32, SimTime>,
    /// Nodes permanently blacklisted.
    pub blacklisted: HashSet<u32>,
    /// Stamp of the last replayed event (the recovered clock base).
    pub last_at: SimTime,
}

/// Replays a WAL prefix into coordinator state. See the module docs for
/// the replay rules; any divergence between the log and what the
/// deterministic strategy reproduces is [`RecoveryError::Corrupt`].
///
/// When `base` carries a checkpoint snapshot, the closed-state
/// accumulators (decided set, node discipline, incarnations,
/// quarantines, blacklist, job counter) start from the snapshot instead
/// of empty, and `journal` is the post-checkpoint suffix. Checkpoints
/// are only taken at quiescence, so the snapshot never contributes open
/// tasks or in-flight jobs.
pub(crate) fn rebuild<S>(
    journal: &Journal,
    cfg: &RuntimeConfig,
    strategy: &Arc<S>,
    base: Option<&CheckpointState>,
) -> Result<Rebuilt<S>, RecoveryError>
where
    S: RedundancyStrategy<bool>,
{
    struct Acc<S> {
        exec: TaskExecution<bool, Arc<S>>,
        replicas: u32,
        jobs_dispatched: Vec<u32>,
        /// Replica ordinal of the next dispatch. Normally the dispatch
        /// count, but a void/re-tally jumps it to `replicas` (the purged
        /// pending indices are burned, never dispatched).
        next_replica: u32,
        timeouts: u32,
        poison: TaskDiscipline,
        epoch: u32,
        first_dispatch: Option<SimTime>,
        returns: Vec<(u32, u32, bool)>,
        must_audit: bool,
    }
    // Charge-counting policy: never trips, so replay can count crashes
    // without re-deciding poisoning (the decision, if made, is in the log
    // as `TaskPoisoned`).
    let charge = PoisonPolicy {
        crash_limit: u32::MAX,
    };
    let corrupt = |msg: String| Err(RecoveryError::Corrupt(msg));

    let mut open: HashMap<u32, Acc<S>> = HashMap::new();
    let mut decided: HashSet<u32> =
        base.map_or_else(HashSet::new, |s| s.decided.iter().copied().collect());
    let mut job_replica: HashMap<u32, u32> = HashMap::new();
    let mut resolved: HashSet<u32> = HashSet::new();
    let mut discipline: HashMap<u32, NodeDiscipline> =
        base.map_or_else(HashMap::new, CheckpointState::discipline_map);
    let mut incarnations: HashMap<u32, u32> =
        base.map_or_else(HashMap::new, |s| s.incarnations.iter().copied().collect());
    let mut quarantined_until: HashMap<u32, SimTime> = base.map_or_else(HashMap::new, |s| {
        s.quarantines
            .iter()
            .map(|&(n, us)| (n, SimTime::from_micros(us)))
            .collect()
    });
    let mut blacklisted: HashSet<u32> =
        base.map_or_else(HashSet::new, |s| s.blacklisted.iter().copied().collect());
    let mut next_job: u32 = base.map_or(0, |s| s.next_job);
    let mut max_task: Option<u32> = base.and_then(|s| s.decided.iter().max().copied());
    let window = cfg.strike_window.as_micros() as u64;

    for e in journal.events() {
        match e.event {
            RunEvent::WaveOpened { task, wave, jobs } => {
                if decided.contains(&task) {
                    return corrupt(format!("wave opened for decided task {task}"));
                }
                max_task = Some(max_task.map_or(task, |m| m.max(task)));
                let acc = open.entry(task).or_insert_with(|| {
                    let mut exec = TaskExecution::new(strategy.clone());
                    if let Some(cap) = cfg.job_cap {
                        exec = exec.with_job_cap(cap);
                    }
                    Acc {
                        exec,
                        replicas: 0,
                        jobs_dispatched: Vec::new(),
                        next_replica: 0,
                        timeouts: 0,
                        poison: TaskDiscipline::default(),
                        epoch: 0,
                        first_dispatch: None,
                        returns: Vec::new(),
                        must_audit: false,
                    }
                });
                let step = acc.exec.step_wave();
                let matches = matches!(
                    step,
                    WaveStep::Wave { wave: w, jobs: j }
                        if w as u32 == wave && j as u32 == jobs
                );
                if !matches {
                    return corrupt(format!(
                        "task {task}: logged wave {wave} of {jobs} jobs, but the \
                         strategy replayed a different step"
                    ));
                }
                acc.replicas += jobs;
            }
            RunEvent::JobDispatched { job, task, .. } => {
                let Some(acc) = open.get_mut(&task) else {
                    return corrupt(format!("job {job} dispatched for unknown task {task}"));
                };
                // Replica index = the per-task dispatch cursor (see module
                // docs); it must stay within the opened waves.
                let replica = acc.next_replica;
                if replica >= acc.replicas {
                    return corrupt(format!(
                        "task {task}: job {job} dispatched beyond the {} opened replicas",
                        acc.replicas
                    ));
                }
                acc.next_replica += 1;
                acc.jobs_dispatched.push(job);
                job_replica.insert(job, replica);
                if acc.first_dispatch.is_none() {
                    acc.first_dispatch = Some(e.at);
                }
                next_job = next_job.max(job + 1);
            }
            RunEvent::JobReturned {
                job,
                task,
                node,
                value,
            } => {
                let Some(acc) = open.get_mut(&task) else {
                    return corrupt(format!("job {job} returned for unknown task {task}"));
                };
                resolved.insert(job);
                acc.exec.record(value);
                acc.returns.push((job, node, value));
                // Mirror the live probation rule: a result from a node
                // fresh out of quarantine flags the task for audit.
                if cfg.audit.is_enabled() && discipline.entry(node).or_default().consume_probation()
                {
                    acc.must_audit = true;
                }
            }
            RunEvent::JobTimedOut { job, task, node } => {
                let Some(acc) = open.get_mut(&task) else {
                    return corrupt(format!("job {job} timed out for unknown task {task}"));
                };
                resolved.insert(job);
                acc.timeouts += 1;
                acc.exec.abandon(1);
                if let Some(policy) = cfg.discipline {
                    let _ = discipline.entry(node).or_default().strike_at(
                        e.at.as_micros(),
                        window,
                        &policy,
                    );
                }
            }
            RunEvent::WorkerCrashed { node, job, task } => {
                // A logged crash always resolved a live job (stale crash
                // reports are logged as StaleReplyDropped instead).
                resolved.insert(job);
                if let Some(acc) = open.get_mut(&task) {
                    let _ = acc.poison.record_crash(&charge);
                    acc.exec.abandon(1);
                }
                if let Some(policy) = cfg.discipline {
                    let _ = discipline.entry(node).or_default().strike_at(
                        e.at.as_micros(),
                        window,
                        &policy,
                    );
                }
            }
            RunEvent::WorkerRestarted { node, incarnation } => {
                let slot = incarnations.entry(node).or_insert(0);
                *slot = (*slot).max(incarnation);
            }
            RunEvent::EpochAdvanced { task, epoch } => {
                if let Some(acc) = open.get_mut(&task) {
                    acc.epoch = epoch;
                }
            }
            RunEvent::VerdictReached { task, .. }
            | RunEvent::TaskCapped { task }
            | RunEvent::TaskPoisoned { task, .. } => {
                open.remove(&task);
                decided.insert(task);
                max_task = Some(max_task.map_or(task, |m| m.max(task)));
            }
            RunEvent::NodeQuarantined { node } => {
                if let Some(policy) = cfg.discipline {
                    quarantined_until.insert(
                        node,
                        e.at + SimDuration::from_units(policy.quarantine_units),
                    );
                }
            }
            RunEvent::NodeReleased { node } => {
                quarantined_until.remove(&node);
                if cfg.audit.is_enabled() {
                    discipline
                        .entry(node)
                        .or_default()
                        .begin_probation(cfg.audit.probation_audits);
                }
            }
            RunEvent::NodeDeparted { node, .. } => {
                blacklisted.insert(node);
                quarantined_until.remove(&node);
            }
            // An audit schedule carries no state of its own: whether the
            // recovered coordinator must re-run an interrupted audit is
            // re-derived at finalize time (selection is a pure function of
            // the seed and task id, plus the replayed `must_audit` flag).
            RunEvent::AuditScheduled { .. } => {}
            RunEvent::AuditPassed { task } => {
                // A clean conclusion releases the probation flag. (A
                // failed group keeps it set, so a crash mid-group
                // re-audits on resume rather than skipping the check.)
                if let Some(acc) = open.get_mut(&task) {
                    acc.must_audit = false;
                }
            }
            RunEvent::AuditFailed { node, .. } => {
                if let Some(policy) = cfg.discipline {
                    let weight = cfg.audit.strike_weight.max(1);
                    let _ = discipline.entry(node).or_default().strike_weighted_at(
                        weight,
                        e.at.as_micros(),
                        window,
                        &policy,
                    );
                }
            }
            RunEvent::VerdictVoided { task } | RunEvent::TaskRetallied { task } => {
                let Some(acc) = open.get_mut(&task) else {
                    return corrupt(format!("void/re-tally for unknown task {task}"));
                };
                // The attempt's evidence is burned: its dispatched jobs
                // are dead (late replies drop as stale), its purged
                // pending ordinals never dispatch, and the strategy
                // restarts from wave 1 with a fresh budget.
                for &job in &acc.jobs_dispatched {
                    resolved.insert(job);
                }
                acc.exec.reset();
                acc.returns.clear();
                acc.must_audit = false;
                acc.next_replica = acc.replicas;
            }
            // Hedge twins live outside the replica accounting: their
            // launch only burns a job id (kept out of the dispatch cursor
            // so replica ordinals replay unchanged), and a win already
            // journalled the vote as the origin job's return. A twin that
            // was still racing at the crash simply dies with the crash —
            // the origin replica is re-armed by the normal in-flight path.
            RunEvent::HedgeLaunched { job, .. } => {
                next_job = next_job.max(job + 1);
            }
            RunEvent::HedgeWon { .. } | RunEvent::HedgeWasted { .. } => {}
            // Tallies, wave closes, retries, and stale drops carry no
            // state the strategy replay does not already reproduce; the
            // runtime never emits churn, outage, or fault-plan events.
            // DAG annotations (transfers, stage verdicts, poison marks)
            // are caller-journaled workload bookkeeping: recovery
            // preserves them in the WAL but they drive no tally state.
            RunEvent::VoteTallied { .. }
            | RunEvent::WaveClosed { .. }
            | RunEvent::JobRetried { .. }
            | RunEvent::StaleReplyDropped { .. }
            | RunEvent::NodeJoined { .. }
            | RunEvent::OutageStarted { .. }
            | RunEvent::FaultInjected { .. }
            | RunEvent::TransferStarted { .. }
            | RunEvent::TransferCompleted { .. }
            | RunEvent::StageDecided { .. }
            | RunEvent::PoisonPropagated { .. }
            | RunEvent::RunEnded => {}
            // A checkpoint seal carries no replayable state — everything
            // it summarizes was seeded from the snapshot before replay.
            RunEvent::CheckpointTaken { .. } => {}
        }
    }

    let last_at = journal
        .events()
        .last()
        .map_or(base.map_or(SimTime::ZERO, |s| s.last_at), |e| e.at);
    let open = open
        .into_iter()
        .map(|(task, acc)| {
            let in_flight: Vec<(u32, u32)> = acc
                .jobs_dispatched
                .iter()
                .filter(|j| !resolved.contains(j))
                .map(|&j| (j, job_replica[&j]))
                .collect();
            (
                task,
                RebuiltTask {
                    exec: acc.exec,
                    replicas: acc.replicas,
                    dispatched: acc.next_replica,
                    timeouts: acc.timeouts,
                    poison: acc.poison,
                    epoch: acc.epoch,
                    first_dispatch: acc.first_dispatch,
                    in_flight,
                    returns: acc.returns,
                    must_audit: acc.must_audit,
                },
            )
        })
        .collect();

    Ok(Rebuilt {
        open,
        decided,
        next_job,
        max_task,
        discipline,
        incarnations,
        quarantined_until,
        blacklisted,
        last_at,
    })
}

/// Orders re-armed jobs deterministically (ascending job id) regardless of
/// hash-map iteration order.
pub(crate) fn sort_rearm(rearm: &mut VecDeque<(u32, u32, u32, u32)>) {
    let mut v: Vec<_> = rearm.drain(..).collect();
    v.sort_unstable_by_key(|&(job, ..)| job);
    rearm.extend(v);
}
