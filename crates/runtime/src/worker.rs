//! The worker pool: OS threads with per-worker bounded inboxes and a
//! pluggable, deliberately unreliable [`Worker`] implementation.
//!
//! Workers are the live analogue of the DCA node pool: each one actually
//! executes the payload, then may lie about the result, hang, or crash,
//! with the same failure semantics as `dca`'s node model (`wrong_rate`,
//! `unresponsive_rate`). Misbehavior is drawn from the counter-based RNG
//! streams of [`smartred_core::parallel::task_rng`] keyed by
//! `(seed, task, replica)` — a pure function of the replica's coordinates,
//! never of which worker ran it or when — so the *votes* of a run are
//! deterministic given a seed even though its timings are not.
//!
//! The pool is *supervised*: a panic inside [`Worker::execute`] is caught
//! on the worker thread, reported to the coordinator as
//! [`PoolEvent::Crash`], and the worker value is rebuilt in place from the
//! factory, so one poisoned payload never takes a pool slot down. Threads
//! stuck inside `execute` are detected via per-slot heartbeats and
//! replaced wholesale with [`WorkerPool::respawn`]; the old thread is
//! detached and its eventual late reply is rejected by epoch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::Rng;
use smartred_core::audit::Cartel;
use smartred_core::parallel::task_rng;

use crate::workload::Payload;

/// One replica job handed to a worker.
#[derive(Debug, Clone)]
pub struct JobAssignment {
    /// Dispatch-order job index (the journal's `job` identifier).
    pub job: u32,
    /// Task the replica belongs to.
    pub task: u32,
    /// Replica index within the task: 0-based, counting reissues.
    pub replica: u32,
    /// The task's replica epoch at dispatch time. Replies whose epoch no
    /// longer matches the coordinator's record for the job are stale —
    /// the job was re-dispatched after a timeout, crash, or hung-worker
    /// respawn — and must not be counted.
    pub epoch: u32,
    /// The work to execute.
    pub payload: Arc<Payload>,
}

/// What a worker sends back for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobResult {
    /// Dispatch-order job index.
    pub job: u32,
    /// Task the replica belongs to.
    pub task: u32,
    /// Index of the worker that executed the job.
    pub worker: u32,
    /// Epoch copied from the [`JobAssignment`]; the coordinator's
    /// staleness filter.
    pub epoch: u32,
    /// The vote: `true` = the honest answer, `false` = the colluding wrong
    /// value (the Byzantine worst case of §2.2, where all liars agree).
    pub vote: bool,
    /// The answer actually reported: the honest answer, flipped when lying.
    pub answer: bool,
}

/// Everything a worker thread can report to the coordinator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PoolEvent {
    /// A job completed (honestly or not) and reported a result.
    Result(JobResult),
    /// [`Worker::execute`] panicked. The thread survived, rebuilt its
    /// worker from the factory, and is already serving its inbox again;
    /// the crashed job died with the old worker value and must be
    /// re-dispatched under a fresh epoch.
    Crash {
        /// Pool slot whose worker panicked.
        worker: u32,
        /// The job that killed it.
        job: u32,
        /// Task the job belonged to.
        task: u32,
        /// Epoch the job carried.
        epoch: u32,
    },
}

/// A job executor running on one pool thread.
pub trait Worker: Send + 'static {
    /// Executes one assignment. `Some((vote, answer))` reports a result;
    /// `None` hangs — the worker reports nothing and the coordinator's
    /// wall-clock deadline eventually fires. A panic is a *crash*: the
    /// supervisor catches it, reports it, and rebuilds the worker.
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)>;
}

/// Fault profile for [`FaultyWorker`]: the live analogue of the DCA node
/// model's per-job failure rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-job probability of reporting the colluding wrong value.
    pub wrong_rate: f64,
    /// Per-job probability of hanging (reporting nothing).
    pub hang_rate: f64,
    /// Per-job probability of panicking mid-execution (killing the worker
    /// value, exercising the supervisor).
    pub crash_rate: f64,
    /// Extra wall-clock latency added to every executed job.
    pub think: Duration,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            wrong_rate: 0.0,
            hang_rate: 0.0,
            crash_rate: 0.0,
            think: Duration::ZERO,
        }
    }
}

/// A worker whose misbehavior is a pure function of `(seed, task, replica)`.
///
/// Every worker of a pool shares the same seed, so a replica's fault draw
/// is identical no matter which worker picks it up — the property that
/// makes the runtime's votes and verdicts reproducible across thread
/// counts and schedules. A reissued replica gets a fresh index and hence a
/// fresh draw, mirroring the simulators' counter-based streams.
#[derive(Debug, Clone)]
pub struct FaultyWorker {
    seed: u64,
    profile: FaultProfile,
}

impl FaultyWorker {
    /// Creates a worker drawing faults from `seed` under `profile`.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        Self { seed, profile }
    }
}

impl Worker for FaultyWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        if !self.profile.think.is_zero() {
            std::thread::sleep(self.profile.think);
        }
        let honest = job.payload.execute();
        let mut rng = task_rng(self.seed, u64::from(job.task), u64::from(job.replica));
        let u: f64 = rng.gen();
        if u < self.profile.hang_rate {
            return None;
        }
        if u < self.profile.hang_rate + self.profile.wrong_rate {
            return Some((false, !honest));
        }
        if u < self.profile.hang_rate + self.profile.wrong_rate + self.profile.crash_rate {
            panic!(
                "injected worker crash (task {}, replica {})",
                job.task, job.replica
            );
        }
        Some((true, honest))
    }
}

/// A worker belonging (or not) to an adaptive colluding coalition.
///
/// Members of the [`Cartel`] lie *in coordination*: whether the coalition
/// lies on a task is the pure function [`Cartel::lies_on`] of
/// `(seed, task)`, so every member reports the same wrong value on the
/// same tasks with no runtime communication — the adversary strategy
/// replication alone cannot defeat, because a wave whose replicas mostly
/// land on members loses the vote honestly counted. The lie rate is
/// throttled (kept small) so per-event strike discipline never
/// accumulates enough evidence; only an audit's recomputation catches the
/// coalition. Non-members behave as a plain [`FaultyWorker`] under
/// `profile`.
///
/// Unlike `FaultyWorker`, a cartel vote depends on *which worker* served
/// the replica, so cartel runs are schedule-dependent by construction —
/// they exercise reliability comparisons, not the byte-determinism
/// fixtures. (The DCA simulator's cartel additionally models dormancy
/// after a member is caught; the live pool has no feedback channel to its
/// workers, so the live cartel never stands down.)
#[derive(Debug, Clone)]
pub struct CartelWorker {
    index: u32,
    seed: u64,
    cartel: Cartel,
    inner: FaultyWorker,
}

impl CartelWorker {
    /// Creates pool worker `index` colluding under `cartel`, drawing its
    /// coordinated lies from `seed`, and otherwise behaving as a
    /// [`FaultyWorker`] with `profile`.
    pub fn new(index: u32, seed: u64, cartel: Cartel, profile: FaultProfile) -> Self {
        Self {
            index,
            seed,
            cartel,
            inner: FaultyWorker::new(seed, profile),
        }
    }
}

impl Worker for CartelWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        if self.cartel.is_member(self.index) && self.cartel.lies_on(self.seed, u64::from(job.task))
        {
            let honest = job.payload.execute();
            return Some((false, !honest));
        }
        self.inner.execute(job)
    }
}

/// The factory the pool rebuilds workers from after crashes and respawns.
pub(crate) type WorkerFactory = Arc<dyn Fn(u32) -> Box<dyn Worker> + Send + Sync>;

/// One pool slot: the live thread plus its supervision state.
struct WorkerSlot {
    inbox: SyncSender<JobAssignment>,
    handle: Option<JoinHandle<()>>,
    /// Micros (+1, so 0 means idle) since pool start at which the current
    /// job began executing. Written by the worker thread, read by the
    /// coordinator's hang supervisor.
    busy_since: Arc<AtomicU64>,
    /// Dispatch eligibility; cleared when node discipline quarantines the
    /// worker.
    enabled: bool,
}

/// The pool: per-worker bounded inboxes plus joinable threads. Internal to
/// the coordinator, which owns dispatch.
///
/// Every worker carries a *global* node id `base + slot`: a sharded
/// runtime gives each shard's sub-pool a disjoint id span (see
/// [`smartred_core::execution::shard_worker_span`]), so journal events,
/// discipline records, and cartel membership all speak one id space no
/// matter how the pool is partitioned. All public methods take and return
/// global node ids.
pub(crate) struct WorkerPool {
    slots: Vec<WorkerSlot>,
    events: Sender<PoolEvent>,
    make: WorkerFactory,
    inbox_cap: usize,
    cursor: usize,
    started: Instant,
    base: u32,
}

impl WorkerPool {
    /// Spawns `count` worker threads with global node ids
    /// `node_base..node_base + count`, each with a bounded inbox of
    /// `inbox_cap` jobs, reporting results and crashes on `events`.
    pub fn spawn(
        count: usize,
        node_base: u32,
        inbox_cap: usize,
        events: Sender<PoolEvent>,
        make: WorkerFactory,
    ) -> Self {
        let started = Instant::now();
        let mut pool = Self {
            slots: Vec::with_capacity(count),
            events,
            make,
            inbox_cap,
            cursor: 0,
            started,
            base: node_base,
        };
        for slot in 0..count as u32 {
            let slot = pool.build_slot(node_base + slot);
            pool.slots.push(slot);
        }
        pool
    }

    fn slot_of(&self, node: u32) -> usize {
        debug_assert!(
            node >= self.base && ((node - self.base) as usize) < self.slots.len(),
            "node {node} outside pool span {}..{}",
            self.base,
            self.base as usize + self.slots.len(),
        );
        (node - self.base) as usize
    }

    /// The global node ids this pool owns.
    pub fn node_ids(&self) -> std::ops::Range<u32> {
        self.base..self.base + self.slots.len() as u32
    }

    fn build_slot(&self, index: u32) -> WorkerSlot {
        let (tx, rx): (SyncSender<JobAssignment>, Receiver<JobAssignment>) =
            std::sync::mpsc::sync_channel(self.inbox_cap.max(1));
        let events = self.events.clone();
        let make = self.make.clone();
        let busy_since = Arc::new(AtomicU64::new(0));
        let busy = busy_since.clone();
        let started = self.started;
        let handle = std::thread::Builder::new()
            .name(format!("smartred-worker-{index}"))
            .spawn(move || {
                let mut worker = make(index);
                while let Ok(job) = rx.recv() {
                    let now = started.elapsed().as_micros() as u64;
                    busy.store(now + 1, Ordering::Release);
                    let outcome = catch_unwind(AssertUnwindSafe(|| worker.execute(&job)));
                    busy.store(0, Ordering::Release);
                    match outcome {
                        // The events channel is unbounded: workers never
                        // block reporting, so a stalled coordinator cannot
                        // deadlock the pool.
                        Ok(Some((vote, answer))) => {
                            let _ = events.send(PoolEvent::Result(JobResult {
                                job: job.job,
                                task: job.task,
                                worker: index,
                                epoch: job.epoch,
                                vote,
                                answer,
                            }));
                        }
                        Ok(None) => {}
                        Err(_) => {
                            let _ = events.send(PoolEvent::Crash {
                                worker: index,
                                job: job.job,
                                task: job.task,
                                epoch: job.epoch,
                            });
                            // The old worker value died with the panic;
                            // rebuild and keep serving the same inbox.
                            worker = make(index);
                        }
                    }
                }
            })
            .expect("spawn worker thread");
        WorkerSlot {
            inbox: tx,
            handle: Some(handle),
            busy_since,
            enabled: true,
        }
    }

    /// Hands `job` to the first enabled worker (round-robin) whose inbox
    /// has room, returning its global node id. Never blocks: returns the
    /// assignment back on `Err` when every eligible inbox is full, so the
    /// caller can park it and retry after results drain.
    pub fn try_dispatch(&mut self, job: JobAssignment) -> Result<u32, JobAssignment> {
        let n = self.slots.len();
        let mut job = job;
        for i in 0..n {
            let w = (self.cursor + i) % n;
            if !self.slots[w].enabled {
                continue;
            }
            match self.slots[w].inbox.try_send(job) {
                Ok(()) => {
                    self.cursor = (w + 1) % n;
                    return Ok(self.base + w as u32);
                }
                Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                    job = back;
                }
            }
        }
        Err(job)
    }

    /// Like [`Self::try_dispatch`], but tries workers in the caller-given
    /// global-id order instead of the pool's round-robin cursor — the hook
    /// the coordinator's assignment policies and hedge dispatch use.
    /// Disabled workers are skipped; the round-robin cursor is untouched,
    /// so ordered dispatch never perturbs the default policy's rotation.
    pub fn try_dispatch_ordered(
        &mut self,
        job: JobAssignment,
        order: &[u32],
    ) -> Result<u32, JobAssignment> {
        let mut job = job;
        for &node in order {
            let w = self.slot_of(node);
            if !self.slots[w].enabled {
                continue;
            }
            match self.slots[w].inbox.try_send(job) {
                Ok(()) => return Ok(node),
                Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                    job = back;
                }
            }
        }
        Err(job)
    }

    /// How long node `node` has been inside `execute`, or `None` when
    /// idle. The hang supervisor compares this against its threshold.
    pub fn busy_for(&self, node: u32) -> Option<Duration> {
        let since = self.slots[self.slot_of(node)]
            .busy_since
            .load(Ordering::Acquire);
        if since == 0 {
            return None;
        }
        let now = self.started.elapsed().as_micros() as u64;
        Some(Duration::from_micros(now.saturating_sub(since - 1)))
    }

    /// Enables or disables dispatch to node `node`. Disabled workers
    /// keep draining jobs already in their inbox.
    pub fn set_enabled(&mut self, node: u32, enabled: bool) {
        let slot = self.slot_of(node);
        self.slots[slot].enabled = enabled;
    }

    /// Whether node `node` is eligible for dispatch.
    pub fn is_enabled(&self, node: u32) -> bool {
        self.slots[self.slot_of(node)].enabled
    }

    /// Number of currently enabled workers.
    pub fn enabled_count(&self) -> usize {
        self.slots.iter().filter(|s| s.enabled).count()
    }

    /// Replaces a hung worker: a fresh thread, worker value, and inbox
    /// take over node `node`'s slot. The old thread is detached — it exits
    /// on its own when it escapes `execute` and finds its inbox closed, and
    /// any late reply it manages to send carries a pre-respawn epoch the
    /// coordinator rejects. Jobs queued in the old inbox are lost; the
    /// caller must re-dispatch everything in flight on this worker.
    pub fn respawn(&mut self, node: u32) {
        let slot = self.slot_of(node);
        let fresh = self.build_slot(node);
        let old = std::mem::replace(&mut self.slots[slot], fresh);
        // Preserve the discipline state across the restart.
        self.slots[slot].enabled = old.enabled;
        drop(old.inbox);
        drop(old.handle); // detach: never join a thread presumed stuck
    }

    /// Closes every inbox and joins the threads. Threads caught mid-job
    /// are detached instead of joined, so a worker hung forever cannot
    /// wedge shutdown.
    pub fn shutdown(mut self) {
        let handles: Vec<(Option<JoinHandle<()>>, Arc<AtomicU64>)> = self
            .slots
            .iter_mut()
            .map(|s| (s.handle.take(), s.busy_since.clone()))
            .collect();
        drop(self.slots); // closes all inboxes
        for (handle, busy) in handles {
            if let Some(handle) = handle {
                if busy.load(Ordering::Acquire) == 0 {
                    let _ = handle.join();
                }
                // else: detach; the thread exits once execute returns.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(task: u32, replica: u32) -> JobAssignment {
        JobAssignment {
            job: 0,
            task,
            replica,
            epoch: 0,
            payload: Arc::new(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            }),
        }
    }

    fn factory(seed: u64, profile: FaultProfile) -> WorkerFactory {
        Arc::new(move |_| Box::new(FaultyWorker::new(seed, profile)))
    }

    #[test]
    fn fault_draw_depends_only_on_task_and_replica() {
        let profile = FaultProfile {
            wrong_rate: 0.5,
            hang_rate: 0.2,
            ..FaultProfile::default()
        };
        let mut a = FaultyWorker::new(9, profile);
        let mut b = FaultyWorker::new(9, profile);
        for task in 0..50 {
            for replica in 0..4 {
                assert_eq!(
                    a.execute(&assignment(task, replica)),
                    b.execute(&assignment(task, replica)),
                    "draw must be identical across workers for ({task}, {replica})"
                );
            }
        }
    }

    #[test]
    fn honest_worker_votes_true_with_honest_answer() {
        let mut w = FaultyWorker::new(3, FaultProfile::default());
        assert_eq!(w.execute(&assignment(0, 0)), Some((true, true)));
    }

    #[test]
    fn lying_draw_flips_the_answer_and_votes_false() {
        let profile = FaultProfile {
            wrong_rate: 1.0,
            ..FaultProfile::default()
        };
        let mut w = FaultyWorker::new(3, profile);
        assert_eq!(w.execute(&assignment(0, 0)), Some((false, false)));
    }

    #[test]
    fn full_inboxes_return_the_job_to_the_caller() {
        let (tx, _rx) = std::sync::mpsc::channel();
        // One worker whose single-slot inbox we saturate with a job it
        // cannot finish quickly.
        let mut pool = WorkerPool::spawn(
            1,
            0,
            1,
            tx,
            factory(
                0,
                FaultProfile {
                    think: Duration::from_millis(50),
                    ..FaultProfile::default()
                },
            ),
        );
        // First dispatch is taken by the worker, second sits in the inbox,
        // third (at the latest) must bounce. Allow a race on the second.
        let mut bounced = false;
        for _ in 0..3 {
            if pool.try_dispatch(assignment(0, 0)).is_err() {
                bounced = true;
                break;
            }
        }
        assert!(bounced, "a saturated pool must refuse, not block");
        pool.shutdown();
    }

    #[test]
    fn crash_is_reported_and_the_worker_survives_it() {
        let (tx, rx) = std::sync::mpsc::channel();
        // Every job panics under this profile.
        let mut pool = WorkerPool::spawn(
            1,
            0,
            4,
            tx,
            factory(
                0,
                FaultProfile {
                    crash_rate: 1.0,
                    ..FaultProfile::default()
                },
            ),
        );
        let mut job = assignment(0, 0);
        job.epoch = 5;
        pool.try_dispatch(job).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            PoolEvent::Crash {
                worker,
                job,
                task,
                epoch,
            } => {
                assert_eq!((worker, job, task, epoch), (0, 0, 0, 5));
            }
            PoolEvent::Result(r) => panic!("expected crash, got result {r:?}"),
        }
        // The same slot keeps serving after the rebuild.
        pool.try_dispatch(assignment(1, 0)).unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            PoolEvent::Crash { task: 1, .. }
        ));
        pool.shutdown();
    }

    #[test]
    fn disabled_workers_are_skipped_by_dispatch() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pool = WorkerPool::spawn(2, 0, 4, tx, factory(0, FaultProfile::default()));
        pool.set_enabled(0, false);
        assert_eq!(pool.enabled_count(), 1);
        for _ in 0..4 {
            let worker = pool.try_dispatch(assignment(0, 0)).unwrap();
            assert_eq!(worker, 1, "disabled slot 0 must never be picked");
        }
        for _ in 0..4 {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                PoolEvent::Result(r) => assert_eq!(r.worker, 1),
                PoolEvent::Crash { .. } => panic!("honest worker cannot crash"),
            }
        }
        pool.shutdown();
    }

    #[test]
    fn respawn_replaces_a_stuck_worker() {
        struct Stuck;
        impl Worker for Stuck {
            fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
                if job.task == 0 {
                    // Park forever: simulates a genuinely wedged thread.
                    std::thread::sleep(Duration::from_secs(3600));
                }
                Some((true, true))
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pool = WorkerPool::spawn(1, 0, 4, tx, Arc::new(|_| Box::new(Stuck)));
        pool.try_dispatch(assignment(0, 0)).unwrap();
        // Wait until the supervisor would see the slot busy.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.busy_for(0).is_none() {
            assert!(Instant::now() < deadline, "worker never started the job");
            std::thread::yield_now();
        }
        pool.respawn(0);
        // The fresh incarnation serves jobs while the old thread stays
        // parked (and is detached at shutdown rather than joined).
        pool.try_dispatch(assignment(1, 0)).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            PoolEvent::Result(r) => assert_eq!(r.task, 1),
            PoolEvent::Crash { .. } => panic!("unexpected crash"),
        }
        pool.shutdown();
    }

    #[test]
    fn pools_with_a_node_base_speak_global_ids() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pool = WorkerPool::spawn(2, 10, 4, tx, factory(0, FaultProfile::default()));
        assert_eq!(pool.node_ids(), 10..12);
        // Dispatch returns global ids, and results carry them too.
        let first = pool.try_dispatch(assignment(0, 0)).unwrap();
        assert!(pool.node_ids().contains(&first));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            PoolEvent::Result(r) => assert_eq!(r.worker, first),
            PoolEvent::Crash { .. } => panic!("honest worker cannot crash"),
        }
        // Discipline and supervision address slots by global id.
        pool.set_enabled(10, false);
        assert!(!pool.is_enabled(10));
        assert!(pool.is_enabled(11));
        assert_eq!(pool.enabled_count(), 1);
        assert_eq!(pool.try_dispatch(assignment(1, 0)).unwrap(), 11);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            PoolEvent::Result(JobResult { worker: 11, .. })
        ));
        pool.respawn(11);
        assert!(pool.busy_for(11).is_none());
        pool.shutdown();
    }
}
