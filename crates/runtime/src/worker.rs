//! The worker pool: OS threads with per-worker bounded inboxes and a
//! pluggable, deliberately unreliable [`Worker`] implementation.
//!
//! Workers are the live analogue of the DCA node pool: each one actually
//! executes the payload, then may lie about the result or hang, with the
//! same failure semantics as `dca`'s node model (`wrong_rate`,
//! `unresponsive_rate`). Misbehavior is drawn from the counter-based RNG
//! streams of [`smartred_core::parallel::task_rng`] keyed by
//! `(seed, task, replica)` — a pure function of the replica's coordinates,
//! never of which worker ran it or when — so the *votes* of a run are
//! deterministic given a seed even though its timings are not.

use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::Rng;
use smartred_core::parallel::task_rng;

use crate::workload::Payload;

/// One replica job handed to a worker.
#[derive(Debug, Clone)]
pub struct JobAssignment {
    /// Dispatch-order job index (the journal's `job` identifier).
    pub job: u32,
    /// Task the replica belongs to.
    pub task: u32,
    /// Replica index within the task: 0-based, counting reissues.
    pub replica: u32,
    /// The work to execute.
    pub payload: Arc<Payload>,
}

/// What a worker sends back for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobResult {
    /// Dispatch-order job index.
    pub job: u32,
    /// Task the replica belongs to.
    pub task: u32,
    /// Index of the worker that executed the job.
    pub worker: u32,
    /// The vote: `true` = the honest answer, `false` = the colluding wrong
    /// value (the Byzantine worst case of §2.2, where all liars agree).
    pub vote: bool,
    /// The answer actually reported: the honest answer, flipped when lying.
    pub answer: bool,
}

/// A job executor running on one pool thread.
pub trait Worker: Send + 'static {
    /// Executes one assignment. `Some((vote, answer))` reports a result;
    /// `None` hangs — the worker reports nothing and the coordinator's
    /// wall-clock deadline eventually fires.
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)>;
}

/// Fault profile for [`FaultyWorker`]: the live analogue of the DCA node
/// model's per-job failure rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-job probability of reporting the colluding wrong value.
    pub wrong_rate: f64,
    /// Per-job probability of hanging (reporting nothing).
    pub hang_rate: f64,
    /// Extra wall-clock latency added to every executed job.
    pub think: Duration,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            wrong_rate: 0.0,
            hang_rate: 0.0,
            think: Duration::ZERO,
        }
    }
}

/// A worker whose misbehavior is a pure function of `(seed, task, replica)`.
///
/// Every worker of a pool shares the same seed, so a replica's fault draw
/// is identical no matter which worker picks it up — the property that
/// makes the runtime's votes and verdicts reproducible across thread
/// counts and schedules. A reissued replica gets a fresh index and hence a
/// fresh draw, mirroring the simulators' counter-based streams.
#[derive(Debug, Clone)]
pub struct FaultyWorker {
    seed: u64,
    profile: FaultProfile,
}

impl FaultyWorker {
    /// Creates a worker drawing faults from `seed` under `profile`.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        Self { seed, profile }
    }
}

impl Worker for FaultyWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        if !self.profile.think.is_zero() {
            std::thread::sleep(self.profile.think);
        }
        let honest = job.payload.execute();
        let mut rng = task_rng(self.seed, u64::from(job.task), u64::from(job.replica));
        let u: f64 = rng.gen();
        if u < self.profile.hang_rate {
            return None;
        }
        if u < self.profile.hang_rate + self.profile.wrong_rate {
            return Some((false, !honest));
        }
        Some((true, honest))
    }
}

/// The pool: per-worker bounded inboxes plus joinable threads. Internal to
/// the coordinator, which owns dispatch.
pub(crate) struct WorkerPool {
    inboxes: Vec<SyncSender<JobAssignment>>,
    handles: Vec<JoinHandle<()>>,
    cursor: usize,
}

impl WorkerPool {
    /// Spawns `count` worker threads, each with a bounded inbox of
    /// `inbox_cap` jobs, reporting results on `results`.
    pub fn spawn<F>(count: usize, inbox_cap: usize, results: Sender<JobResult>, mut make: F) -> Self
    where
        F: FnMut(u32) -> Box<dyn Worker>,
    {
        let mut inboxes = Vec::with_capacity(count);
        let mut handles = Vec::with_capacity(count);
        for index in 0..count as u32 {
            let (tx, rx): (SyncSender<JobAssignment>, Receiver<JobAssignment>) =
                std::sync::mpsc::sync_channel(inbox_cap.max(1));
            let results = results.clone();
            let mut worker = make(index);
            let handle = std::thread::Builder::new()
                .name(format!("smartred-worker-{index}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        if let Some((vote, answer)) = worker.execute(&job) {
                            // The results channel is unbounded: workers
                            // never block reporting, so a stalled
                            // coordinator cannot deadlock the pool.
                            let _ = results.send(JobResult {
                                job: job.job,
                                task: job.task,
                                worker: index,
                                vote,
                                answer,
                            });
                        }
                    }
                })
                .expect("spawn worker thread");
            inboxes.push(tx);
            handles.push(handle);
        }
        Self {
            inboxes,
            handles,
            cursor: 0,
        }
    }

    /// Hands `job` to the first worker (round-robin) whose inbox has room.
    /// Never blocks: returns the assignment back on `Err` when every inbox
    /// is full, so the caller can park it and retry after results drain.
    pub fn try_dispatch(&mut self, job: JobAssignment) -> Result<u32, JobAssignment> {
        let n = self.inboxes.len();
        let mut job = job;
        for i in 0..n {
            let w = (self.cursor + i) % n;
            match self.inboxes[w].try_send(job) {
                Ok(()) => {
                    self.cursor = (w + 1) % n;
                    return Ok(w as u32);
                }
                Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                    job = back;
                }
            }
        }
        Err(job)
    }

    /// Closes every inbox and joins the threads.
    pub fn shutdown(self) {
        drop(self.inboxes);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(task: u32, replica: u32) -> JobAssignment {
        JobAssignment {
            job: 0,
            task,
            replica,
            payload: Arc::new(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            }),
        }
    }

    #[test]
    fn fault_draw_depends_only_on_task_and_replica() {
        let profile = FaultProfile {
            wrong_rate: 0.5,
            hang_rate: 0.2,
            think: Duration::ZERO,
        };
        let mut a = FaultyWorker::new(9, profile);
        let mut b = FaultyWorker::new(9, profile);
        for task in 0..50 {
            for replica in 0..4 {
                assert_eq!(
                    a.execute(&assignment(task, replica)),
                    b.execute(&assignment(task, replica)),
                    "draw must be identical across workers for ({task}, {replica})"
                );
            }
        }
    }

    #[test]
    fn honest_worker_votes_true_with_honest_answer() {
        let mut w = FaultyWorker::new(3, FaultProfile::default());
        assert_eq!(w.execute(&assignment(0, 0)), Some((true, true)));
    }

    #[test]
    fn lying_draw_flips_the_answer_and_votes_false() {
        let profile = FaultProfile {
            wrong_rate: 1.0,
            hang_rate: 0.0,
            think: Duration::ZERO,
        };
        let mut w = FaultyWorker::new(3, profile);
        assert_eq!(w.execute(&assignment(0, 0)), Some((false, false)));
    }

    #[test]
    fn full_inboxes_return_the_job_to_the_caller() {
        let (tx, _rx) = std::sync::mpsc::channel();
        // One worker whose single-slot inbox we saturate with a job it
        // cannot finish quickly.
        let mut pool = WorkerPool::spawn(1, 1, tx, |_| {
            Box::new(FaultyWorker::new(
                0,
                FaultProfile {
                    think: Duration::from_millis(50),
                    ..FaultProfile::default()
                },
            ))
        });
        // First dispatch is taken by the worker, second sits in the inbox,
        // third (at the latest) must bounce. Allow a race on the second.
        let mut bounced = false;
        for _ in 0..3 {
            if pool.try_dispatch(assignment(0, 0)).is_err() {
                bounced = true;
                break;
            }
        }
        assert!(bounced, "a saturated pool must refuse, not block");
        pool.shutdown();
    }
}
