//! Run metrics and the journal replay cross-check.
//!
//! The coordinator builds a [`RuntimeReport`] incrementally as it emits
//! journal events; [`report_from_journal`] derives the same report purely
//! from the recorded event stream. Every metric is a fold over events in
//! stream order — including the order-sensitive Welford summaries — so for
//! a journaled run the two must agree **exactly** (`==`), the same
//! contract `dca::replay` enforces for the simulator. Any drift between
//! the live bookkeeping and the recorded trajectory is a test failure,
//! not a silent skew.

use std::collections::HashMap;

use smartred_desim::journal::{Journal, RunEvent, Stamped};
use smartred_desim::time::SimTime;
use smartred_stats::Summary;

/// Aggregate metrics of one runtime run.
///
/// Time-valued fields are in journal units (1 unit = 1 second of wall
/// time); they are derived from the stamped event times, so live and
/// replayed reports agree bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// Tasks that reached a firm verdict.
    pub tasks_completed: usize,
    /// Completed tasks whose verdict was the honest answer.
    pub tasks_correct: usize,
    /// Tasks abandoned at the job cap without a verdict.
    pub tasks_capped: usize,
    /// Jobs dispatched to workers.
    pub total_jobs: u64,
    /// Jobs that missed their wall-clock deadline.
    pub timeouts: u64,
    /// Timeout-triggered reissues.
    pub retries: u64,
    /// Worker panics caught and recovered by the supervisor.
    pub worker_crashes: u64,
    /// Worker restarts: one per caught panic plus one per hung-worker
    /// respawn.
    pub worker_restarts: u64,
    /// Late or pre-epoch replies rejected by the staleness filter.
    pub stale_replies: u64,
    /// Tasks quarantined for repeatedly crashing workers.
    pub tasks_poisoned: usize,
    /// Local recomputations performed by the audit layer (each costs one
    /// job-equivalent of coordinator compute).
    pub audits: u64,
    /// Results an audit caught contradicting the local recomputation.
    pub audit_failures: u64,
    /// Tainted verdicts voided before acceptance (task re-ran from
    /// scratch).
    pub verdicts_voided: u64,
    /// Open tasks re-tallied because a caught liar had touched them.
    pub tasks_retallied: u64,
    /// Hedge twins launched for straggling jobs (quantile-triggered
    /// duplicates; not counted in `total_jobs` or the wave accounting).
    pub hedges_launched: u64,
    /// Hedge twins that beat their straggling origin and supplied the vote.
    pub hedges_won: u64,
    /// Hedge twins whose work was discarded (origin answered first, or the
    /// twin itself lapsed).
    pub hedges_wasted: u64,
    /// Jobs per completed task (the paper's cost factor, measured live).
    pub jobs_per_task: Summary,
    /// Deployment waves per completed task.
    pub waves_per_task: Summary,
    /// First-dispatch → verdict latency per completed task, in units.
    pub response_time: Summary,
    /// Wall-clock run length in units (stamp of the run-ended event).
    pub makespan_units: f64,
}

impl RuntimeReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of completed tasks that accepted the honest answer
    /// (0 when nothing completed).
    pub fn reliability(&self) -> f64 {
        if self.tasks_completed == 0 {
            0.0
        } else {
            self.tasks_correct as f64 / self.tasks_completed as f64
        }
    }

    /// Mean jobs per completed task.
    pub fn cost_factor(&self) -> f64 {
        self.jobs_per_task.mean()
    }

    /// Total work performed, in job-equivalents: dispatched jobs plus the
    /// audit layer's local recomputations. The matched-cost comparisons of
    /// audit-enabled vs audit-free strategies use this, not `total_jobs`,
    /// so neither auditing nor hedging is ever "free".
    pub fn total_cost(&self) -> u64 {
        self.total_jobs + self.audits + self.hedges_launched
    }
}

/// Per-task accumulation while folding over the event stream.
#[derive(Clone, Copy, Default)]
struct TaskAcc {
    first_dispatch: Option<SimTime>,
    jobs: u64,
    waves: u32,
}

/// Recomputes the full [`RuntimeReport`] of a journaled run from its
/// journal. For any run with journaling enabled, the output equals the
/// live report exactly.
pub fn report_from_journal(journal: &Journal) -> RuntimeReport {
    let mut report = RuntimeReport::new();
    fold_into(&mut report, journal.events());
    report
}

/// Folds an event stream into an existing report — the continuation used
/// by checkpointed recovery, where the snapshot supplies the base report
/// and the WAL suffix is folded on top. The per-task accumulation starts
/// fresh, which is sound because checkpoints are only taken at
/// quiescence: no task in the suffix has pre-checkpoint dispatches, and
/// task ids are never reused.
pub(crate) fn fold_into(report: &mut RuntimeReport, events: &[Stamped]) {
    let mut tasks: HashMap<u32, TaskAcc> = HashMap::new();
    for e in events {
        match e.event {
            RunEvent::JobDispatched { task, .. } => {
                report.total_jobs += 1;
                let acc = tasks.entry(task).or_default();
                if acc.first_dispatch.is_none() {
                    acc.first_dispatch = Some(e.at);
                }
            }
            RunEvent::WaveOpened { task, jobs, .. } => {
                let acc = tasks.entry(task).or_default();
                acc.jobs += u64::from(jobs);
                acc.waves += 1;
            }
            RunEvent::JobTimedOut { .. } => report.timeouts += 1,
            RunEvent::JobRetried { .. } => report.retries += 1,
            RunEvent::VerdictReached { task, value, .. } => {
                report.tasks_completed += 1;
                if value {
                    report.tasks_correct += 1;
                }
                let acc = tasks.get(&task).copied().unwrap_or_default();
                report.jobs_per_task.record(acc.jobs as f64);
                report.waves_per_task.record(acc.waves as f64);
                let response = match acc.first_dispatch {
                    Some(started) => e.at.since(started).as_units(),
                    None => 0.0,
                };
                report.response_time.record(response);
            }
            RunEvent::TaskCapped { .. } => report.tasks_capped += 1,
            RunEvent::AuditScheduled { .. } => report.audits += 1,
            RunEvent::AuditFailed { .. } => report.audit_failures += 1,
            // A void or re-tally restarts the task from wave 1 with a
            // fresh job budget; only the final attempt's waves count in
            // the per-task summaries, mirroring the live bookkeeping.
            RunEvent::VerdictVoided { task } => {
                report.verdicts_voided += 1;
                let acc = tasks.entry(task).or_default();
                acc.jobs = 0;
                acc.waves = 0;
            }
            RunEvent::TaskRetallied { task } => {
                report.tasks_retallied += 1;
                let acc = tasks.entry(task).or_default();
                acc.jobs = 0;
                acc.waves = 0;
            }
            RunEvent::WorkerCrashed { .. } => report.worker_crashes += 1,
            RunEvent::WorkerRestarted { .. } => report.worker_restarts += 1,
            RunEvent::StaleReplyDropped { .. } => report.stale_replies += 1,
            RunEvent::TaskPoisoned { .. } => report.tasks_poisoned += 1,
            RunEvent::HedgeLaunched { .. } => report.hedges_launched += 1,
            RunEvent::HedgeWon { .. } => report.hedges_won += 1,
            RunEvent::HedgeWasted { .. } => report.hedges_wasted += 1,
            RunEvent::RunEnded => report.makespan_units = e.at.as_units(),
            // The runtime does not emit churn, quarantine, or fault-plan
            // events; returned jobs, wave closes, tallies, and checkpoint
            // seals carry no report-level metric of their own.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_journal_folds_to_empty_report() {
        assert_eq!(report_from_journal(&Journal::new()), RuntimeReport::new());
    }

    #[test]
    fn reliability_and_cost_read_the_counters() {
        let mut r = RuntimeReport::new();
        assert_eq!(r.reliability(), 0.0);
        r.tasks_completed = 4;
        r.tasks_correct = 3;
        r.jobs_per_task.record(10.0);
        r.jobs_per_task.record(14.0);
        assert!((r.reliability() - 0.75).abs() < 1e-12);
        assert!((r.cost_factor() - 12.0).abs() < 1e-12);
    }
}
