//! The coordinator: task admission, replica dispatch, vote tallying,
//! wall-clock deadlines, and verdict delivery.
//!
//! One coordinator thread owns all redundancy state and the journal; it is
//! the only writer of either, which keeps the journal's monotone-time
//! invariant trivially true under real concurrency. Every channel in the
//! design is either bounded-and-non-blocking (submission queue, worker
//! inboxes — `try_send` only) or unbounded (results, verdicts), so no
//! cycle of blocking sends exists and the runtime cannot deadlock on its
//! own queues.
//!
//! Timeout semantics mirror the simulators' `DeadlinePolicy::Reissue`:
//! a job that misses its wall-clock deadline is abandoned (its late result,
//! if any, is ignored) and the strategy reopens a wave for a replacement
//! replica on a fresh RNG stream.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smartred_core::execution::{TaskExecution, WaveStep};
use smartred_core::parallel::Threads;
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::journal::{Journal, RunEvent};
use smartred_desim::time::{SimDuration, SimTime};

use crate::report::RuntimeReport;
use crate::worker::{JobAssignment, JobResult, Worker, WorkerPool};
use crate::workload::Payload;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-thread count; `None` resolves like the sweep engine's
    /// [`Threads::Auto`] (the `SMARTRED_THREADS` environment variable,
    /// falling back to available parallelism).
    pub workers: Option<usize>,
    /// Bounded capacity of each worker's inbox.
    pub inbox_cap: usize,
    /// Bounded capacity of the submission queue; submissions beyond it are
    /// shed at the client.
    pub queue_cap: usize,
    /// Maximum tasks in flight; submissions past it wait in the queue.
    pub max_active: usize,
    /// Wall-clock deadline per job; a miss abandons the job and reissues.
    pub deadline: Duration,
    /// Optional cap on total jobs per task; hitting it fails the task.
    pub job_cap: Option<usize>,
    /// Whether to record the run journal.
    pub journal: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: None,
            inbox_cap: 64,
            queue_cap: 256,
            max_active: 256,
            deadline: Duration::from_secs(2),
            job_cap: None,
            journal: true,
        }
    }
}

/// Admission-control verdict for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted with spare in-flight capacity: dispatch begins immediately.
    Accepted {
        /// The task id assigned to the submission.
        task: u32,
    },
    /// Admitted into the bounded submission queue; dispatch starts once
    /// the in-flight task count drops below the cap. (The capacity read is
    /// advisory — a concurrent admission may reclassify, but the task is
    /// admitted either way.)
    Queued {
        /// The task id assigned to the submission.
        task: u32,
    },
    /// Load-shed: the submission queue is full (or the runtime has shut
    /// down). The task was **not** admitted; the caller owns retry policy.
    Shed,
}

/// The delivered outcome of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskVerdict {
    /// The task id from [`SubmitOutcome`].
    pub task: u32,
    /// The winning vote (`true` = honest answer); `None` when the task hit
    /// its job cap without a verdict.
    pub vote: Option<bool>,
    /// The answer reported by the winning side, when a verdict was reached.
    pub answer: Option<bool>,
    /// First-dispatch → verdict latency, in journal units (seconds).
    pub latency_units: f64,
    /// Jobs dispatched for this task.
    pub jobs: u32,
}

/// Counts of how submissions fared at admission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted with spare in-flight capacity.
    pub accepted: u64,
    /// Submissions admitted into the queue under backpressure.
    pub queued: u64,
    /// Submissions shed at a full queue.
    pub shed: u64,
}

impl AdmissionStats {
    /// Total submission attempts.
    pub fn submitted(&self) -> u64 {
        self.accepted + self.queued + self.shed
    }

    /// Fraction of submission attempts shed (0 when nothing submitted).
    pub fn shed_rate(&self) -> f64 {
        let total = self.submitted();
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct AdmissionCounters {
    accepted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionCounters {
    fn snapshot(&self) -> AdmissionStats {
        AdmissionStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// One admitted submission, in flight to the coordinator.
struct Submission {
    task: u32,
    payload: Arc<Payload>,
    verdict_tx: Sender<TaskVerdict>,
}

/// A submission handle. Clones share the runtime's admission queue but
/// each clone receives verdicts only for its own submissions.
#[derive(Debug)]
pub struct Client {
    submit_tx: SyncSender<Submission>,
    verdict_tx: Sender<TaskVerdict>,
    verdict_rx: Receiver<TaskVerdict>,
    next_task: Arc<AtomicU32>,
    active: Arc<AtomicUsize>,
    max_active: usize,
    counters: Arc<AdmissionCounters>,
}

impl Client {
    /// Submits one task. Never blocks: a full queue sheds the submission
    /// and returns [`SubmitOutcome::Shed`] (task ids are opaque — an id
    /// burned by a shed submission is never reused for another task).
    pub fn submit(&self, payload: Payload) -> SubmitOutcome {
        let task = self.next_task.fetch_add(1, Ordering::Relaxed);
        let submission = Submission {
            task,
            payload: Arc::new(payload),
            verdict_tx: self.verdict_tx.clone(),
        };
        match self.submit_tx.try_send(submission) {
            Ok(()) => {
                if self.active.load(Ordering::Relaxed) < self.max_active {
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Accepted { task }
                } else {
                    self.counters.queued.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Queued { task }
                }
            }
            Err(_) => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        }
    }

    /// Blocks for this client's next verdict; `None` once the runtime has
    /// shut down and no verdicts remain.
    pub fn recv(&self) -> Option<TaskVerdict> {
        self.verdict_rx.recv().ok()
    }

    /// Like [`recv`](Self::recv) with a timeout; `None` on timeout or
    /// shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict> {
        self.verdict_rx.recv_timeout(timeout).ok()
    }
}

impl Clone for Client {
    fn clone(&self) -> Self {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        Self {
            submit_tx: self.submit_tx.clone(),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            active: self.active.clone(),
            max_active: self.max_active,
            counters: self.counters.clone(),
        }
    }
}

/// The finished run: live report, admission tally, and the journal.
#[derive(Debug)]
pub struct RuntimeRun {
    /// Metrics accumulated live by the coordinator.
    pub report: RuntimeReport,
    /// How submissions fared at admission (client-side; shed submissions
    /// never reach the coordinator and are not journaled).
    pub admission: AdmissionStats,
    /// The recorded event stream (empty when journaling was disabled).
    pub journal: Journal,
}

/// A live job-serving runtime: worker pool plus coordinator thread.
///
/// Create with [`Runtime::start`], submit through [`Runtime::client`]
/// handles, then drop every client and call [`Runtime::finish`] — the
/// coordinator drains in-flight tasks once all submission handles are gone
/// and `finish` returns the final [`RuntimeRun`].
#[derive(Debug)]
pub struct Runtime {
    submit_tx: Option<SyncSender<Submission>>,
    handle: JoinHandle<(RuntimeReport, Journal)>,
    next_task: Arc<AtomicU32>,
    active: Arc<AtomicUsize>,
    counters: Arc<AdmissionCounters>,
    max_active: usize,
}

impl Runtime {
    /// Starts the worker pool and coordinator. `make_worker` builds the
    /// executor for each pool index — use [`crate::worker::FaultyWorker`]
    /// for seed-reproducible unreliability, or any custom [`Worker`].
    pub fn start<S, F>(cfg: RuntimeConfig, strategy: S, make_worker: F) -> Self
    where
        S: RedundancyStrategy<bool> + Send + Sync + 'static,
        F: FnMut(u32) -> Box<dyn Worker>,
    {
        let worker_count = cfg.workers.unwrap_or_else(|| Threads::Auto.get()).max(1);
        let (submit_tx, submit_rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        let (result_tx, result_rx) = mpsc::channel();
        let pool = WorkerPool::spawn(worker_count, cfg.inbox_cap, result_tx, make_worker);
        let active = Arc::new(AtomicUsize::new(0));
        let counters = Arc::new(AdmissionCounters::default());
        let max_active = cfg.max_active.max(1);
        let coordinator = Coordinator {
            journal: if cfg.journal {
                Journal::new()
            } else {
                Journal::disabled()
            },
            cfg,
            strategy: Arc::new(strategy),
            pool,
            submit_rx,
            result_rx,
            start: Instant::now(),
            report: RuntimeReport::new(),
            tasks: HashMap::new(),
            jobs: HashMap::new(),
            deadlines: BinaryHeap::new(),
            pending: VecDeque::new(),
            next_job: 0,
            active: active.clone(),
            draining: false,
        };
        let handle = std::thread::Builder::new()
            .name("smartred-coordinator".into())
            .spawn(move || coordinator.run())
            .expect("spawn coordinator thread");
        Self {
            submit_tx: Some(submit_tx),
            handle,
            next_task: Arc::new(AtomicU32::new(0)),
            active,
            counters,
            max_active,
        }
    }

    /// Creates a submission handle.
    pub fn client(&self) -> Client {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        Client {
            submit_tx: self.submit_tx.clone().expect("runtime already finished"),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            active: self.active.clone(),
            max_active: self.max_active,
            counters: self.counters.clone(),
        }
    }

    /// Shuts down: stops accepting submissions, waits for in-flight tasks
    /// to drain and the pool to join, and returns the run.
    ///
    /// Every [`Client`] must be dropped first — the coordinator drains only
    /// once all submission handles are gone, so `finish` blocks while any
    /// client could still submit.
    pub fn finish(mut self) -> RuntimeRun {
        drop(self.submit_tx.take());
        let (report, journal) = self.handle.join().expect("coordinator panicked");
        RuntimeRun {
            report,
            admission: self.counters.snapshot(),
            journal,
        }
    }
}

/// Per-task redundancy state.
struct TaskState<S> {
    exec: TaskExecution<bool, Arc<S>>,
    payload: Arc<Payload>,
    verdict_tx: Sender<TaskVerdict>,
    /// Replica indices issued so far (reissues advance it).
    replicas: u32,
    /// Timeouts charged so far (1-based retry attempts).
    timeouts: u32,
    first_dispatch: Option<SimTime>,
    /// Last answer reported by a `false`-vote (index 0) / `true`-vote
    /// (index 1) replica, for verdict delivery.
    answers: [Option<bool>; 2],
    /// Dispatched, unresolved job ids.
    live_jobs: Vec<u32>,
}

/// A dispatched, unresolved job.
struct JobInfo {
    task: u32,
    worker: u32,
}

struct Coordinator<S> {
    cfg: RuntimeConfig,
    strategy: Arc<S>,
    pool: WorkerPool,
    submit_rx: Receiver<Submission>,
    result_rx: Receiver<JobResult>,
    start: Instant,
    journal: Journal,
    report: RuntimeReport,
    tasks: HashMap<u32, TaskState<S>>,
    jobs: HashMap<u32, JobInfo>,
    deadlines: BinaryHeap<Reverse<(Instant, u32)>>,
    /// Replicas decided but not yet handed to a worker (all inboxes full).
    pending: VecDeque<(u32, u32)>,
    next_job: u32,
    active: Arc<AtomicUsize>,
    draining: bool,
}

/// Poll tick: bounds how long the loop waits before re-checking the
/// submission queue and parked dispatches.
const TICK: Duration = Duration::from_millis(1);

impl<S: RedundancyStrategy<bool>> Coordinator<S> {
    fn run(mut self) -> (RuntimeReport, Journal) {
        loop {
            self.admit();
            self.drain_pending();
            self.expire_deadlines(Instant::now());
            if self.draining && self.tasks.is_empty() {
                break;
            }
            if self.tasks.is_empty() {
                // Nothing in flight: block on the submission queue.
                match self.submit_rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(sub) => self.admit_one(sub),
                    Err(RecvTimeoutError::Disconnected) => self.draining = true,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            } else {
                let wait = match self.deadlines.peek() {
                    Some(&Reverse((deadline, _))) => {
                        deadline.saturating_duration_since(Instant::now()).min(TICK)
                    }
                    None => TICK,
                };
                match self.result_rx.recv_timeout(wait) {
                    Ok(result) => {
                        self.on_result(result);
                        while let Ok(more) = self.result_rx.try_recv() {
                            self.on_result(more);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    // All workers gone: nothing can resolve; stop.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        let end = self.stamp();
        self.journal.record(end, RunEvent::RunEnded);
        self.report.makespan_units = end.as_units();
        self.pool.shutdown();
        (self.report, self.journal)
    }

    /// Monotone wall-clock stamp: micros since runtime start, so 1 journal
    /// unit = 1 second of wall time.
    fn stamp(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn admit(&mut self) {
        while self.tasks.len() < self.cfg.max_active.max(1) {
            match self.submit_rx.try_recv() {
                Ok(sub) => self.admit_one(sub),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.draining = true;
                    break;
                }
            }
        }
        self.active.store(self.tasks.len(), Ordering::Relaxed);
    }

    fn admit_one(&mut self, sub: Submission) {
        let mut exec = TaskExecution::new(self.strategy.clone());
        if let Some(cap) = self.cfg.job_cap {
            exec = exec.with_job_cap(cap);
        }
        self.tasks.insert(
            sub.task,
            TaskState {
                exec,
                payload: sub.payload,
                verdict_tx: sub.verdict_tx,
                replicas: 0,
                timeouts: 0,
                first_dispatch: None,
                answers: [None, None],
                live_jobs: Vec::new(),
            },
        );
        self.active.store(self.tasks.len(), Ordering::Relaxed);
        let at = self.stamp();
        self.advance(sub.task, at);
    }

    /// Steps the task's strategy until it parks (pending/verdict/cap),
    /// queueing any opened wave's replicas for dispatch.
    fn advance(&mut self, task: u32, at: SimTime) {
        loop {
            let Some(state) = self.tasks.get_mut(&task) else {
                return;
            };
            match state.exec.step_wave() {
                WaveStep::Wave { wave, jobs } => {
                    let first_replica = state.replicas;
                    state.replicas += jobs as u32;
                    self.journal.record(
                        at,
                        RunEvent::WaveOpened {
                            task,
                            wave: wave as u32,
                            jobs: jobs as u32,
                        },
                    );
                    for replica in first_replica..first_replica + jobs as u32 {
                        self.pending.push_back((task, replica));
                    }
                }
                WaveStep::Pending => return,
                WaveStep::Verdict(v) => {
                    self.finalize(task, Some(v), at);
                    return;
                }
                WaveStep::Capped { .. } => {
                    self.finalize(task, None, at);
                    return;
                }
            }
        }
    }

    /// Hands parked replicas to workers, stopping at the first refusal
    /// (every inbox full) — the next tick retries.
    fn drain_pending(&mut self) {
        while let Some((task, replica)) = self.pending.pop_front() {
            let Some(state) = self.tasks.get(&task) else {
                continue;
            };
            let job = self.next_job;
            let assignment = JobAssignment {
                job,
                task,
                replica,
                payload: state.payload.clone(),
            };
            match self.pool.try_dispatch(assignment) {
                Ok(worker) => {
                    self.next_job += 1;
                    let now = Instant::now();
                    let at = self.stamp();
                    let eta = at + SimDuration::from_micros(self.cfg.deadline.as_micros() as u64);
                    self.journal.record(
                        at,
                        RunEvent::JobDispatched {
                            job,
                            task,
                            node: worker,
                            eta,
                        },
                    );
                    self.report.total_jobs += 1;
                    let state = self.tasks.get_mut(&task).expect("checked above");
                    if state.first_dispatch.is_none() {
                        state.first_dispatch = Some(at);
                    }
                    state.live_jobs.push(job);
                    self.jobs.insert(job, JobInfo { task, worker });
                    self.deadlines.push(Reverse((now + self.cfg.deadline, job)));
                }
                Err(assignment) => {
                    self.pending
                        .push_front((assignment.task, assignment.replica));
                    return;
                }
            }
        }
    }

    fn on_result(&mut self, result: JobResult) {
        // A job absent from the live map already timed out (or its task
        // resolved): the late result is ignored, exactly like the
        // simulators drop post-timeout returns.
        let Some(info) = self.jobs.remove(&result.job) else {
            return;
        };
        let task = info.task;
        let at = self.stamp();
        let Some(state) = self.tasks.get_mut(&task) else {
            return;
        };
        state.live_jobs.retain(|&j| j != result.job);
        state.answers[usize::from(result.vote)] = Some(result.answer);
        state.exec.record(result.vote);
        self.journal.record(
            at,
            RunEvent::JobReturned {
                job: result.job,
                task,
                node: result.worker,
                value: result.vote,
            },
        );
        let (leader_count, runner_up) = state.exec.leader_counts();
        self.journal.record(
            at,
            RunEvent::VoteTallied {
                task,
                value: result.vote,
                leader_count: leader_count as u32,
                runner_up: runner_up as u32,
            },
        );
        if state.exec.wave_boundary() {
            let wave = state.exec.waves() as u32;
            self.journal.record(at, RunEvent::WaveClosed { task, wave });
        }
        self.advance(task, at);
    }

    fn expire_deadlines(&mut self, now: Instant) {
        while let Some(&Reverse((deadline, job))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            // Resolved jobs leave stale heap entries; skip them.
            let Some(info) = self.jobs.remove(&job) else {
                continue;
            };
            let task = info.task;
            let at = self.stamp();
            let Some(state) = self.tasks.get_mut(&task) else {
                continue;
            };
            state.live_jobs.retain(|&j| j != job);
            state.timeouts += 1;
            let attempt = state.timeouts;
            state.exec.abandon(1);
            self.journal.record(
                at,
                RunEvent::JobTimedOut {
                    job,
                    task,
                    node: info.worker,
                },
            );
            self.report.timeouts += 1;
            // Reissue semantics: the abandoned replica is replaced by a
            // fresh one when the strategy reopens the wave below.
            self.journal
                .record(at, RunEvent::JobRetried { task, attempt });
            self.report.retries += 1;
            let state = self.tasks.get(&task).expect("checked above");
            if state.exec.wave_boundary() {
                let wave = state.exec.waves() as u32;
                self.journal.record(at, RunEvent::WaveClosed { task, wave });
            }
            self.advance(task, at);
        }
    }

    fn finalize(&mut self, task: u32, verdict: Option<bool>, at: SimTime) {
        let state = self.tasks.remove(&task).expect("finalizing a live task");
        for job in &state.live_jobs {
            self.jobs.remove(job);
        }
        self.active.store(self.tasks.len(), Ordering::Relaxed);
        let jobs = state.exec.jobs_deployed();
        let latency = match state.first_dispatch {
            Some(started) => at.since(started).as_units(),
            None => 0.0,
        };
        match verdict {
            Some(value) => {
                self.journal.record(
                    at,
                    RunEvent::VerdictReached {
                        task,
                        value,
                        degraded: false,
                        confidence: 1.0,
                    },
                );
                self.report.tasks_completed += 1;
                if value {
                    self.report.tasks_correct += 1;
                }
                self.report.jobs_per_task.record(jobs as f64);
                self.report.waves_per_task.record(state.exec.waves() as f64);
                self.report.response_time.record(latency);
                let _ = state.verdict_tx.send(TaskVerdict {
                    task,
                    vote: Some(value),
                    answer: state.answers[usize::from(value)],
                    latency_units: latency,
                    jobs: jobs as u32,
                });
            }
            None => {
                self.journal.record(at, RunEvent::TaskCapped { task });
                self.report.tasks_capped += 1;
                let _ = state.verdict_tx.send(TaskVerdict {
                    task,
                    vote: None,
                    answer: None,
                    latency_units: latency,
                    jobs: jobs as u32,
                });
            }
        }
    }
}
