//! The coordinator: task admission, replica dispatch, vote tallying,
//! wall-clock deadlines, worker supervision, and verdict delivery —
//! crash-recoverable via a durable write-ahead log.
//!
//! One coordinator thread owns all redundancy state and the journal; it is
//! the only writer of either, which keeps the journal's monotone-time
//! invariant trivially true under real concurrency. Every channel in the
//! design is either bounded-and-non-blocking (submission queue, worker
//! inboxes — `try_send` only) or unbounded (results, verdicts), so no
//! cycle of blocking sends exists and the runtime cannot deadlock on its
//! own queues.
//!
//! ## Write-ahead logging
//!
//! When [`RuntimeConfig::wal`] is set, every journal record is durably
//! appended (flushed, and fsync'd under [`RuntimeConfig::wal_sync`])
//! *before* the coordinator acts on it — in particular before a verdict
//! is sent or a wave's replicas are queued. [`Runtime::recover`] replays
//! the surviving WAL prefix (tolerating a torn final record) into a fresh
//! coordinator that resumes exactly where the dead one stopped: decided
//! tasks are never re-run or re-delivered, in-flight jobs are re-armed
//! without new journal records, and replica indices — and hence the
//! deterministic fault draws keyed by `(seed, task, replica)` — are
//! preserved.
//!
//! ## Supervision and epochs
//!
//! Each dispatched job carries its task's *replica epoch*. Replies whose
//! epoch no longer matches the coordinator's record are rejected
//! ([`RunEvent::StaleReplyDropped`]) instead of being tallied, which
//! closes the double-count window when a job is re-dispatched after a
//! hung-worker respawn, and makes the reissue-after-timeout rejection
//! explicit. Worker panics are caught in the pool, reported, and healed by
//! rebuilding the worker; tasks that repeatedly kill workers are poisoned
//! (failed) under [`smartred_core::resilience::PoisonPolicy`] rather than
//! re-issued forever. Repeated timeouts and crashes also charge node-level
//! strikes under the shared
//! [`smartred_core::resilience::QuarantinePolicy`].
//!
//! Timeout semantics mirror the simulators' `DeadlinePolicy::Reissue`:
//! a job that misses its wall-clock deadline is abandoned (its late result,
//! if any, is dropped as stale) and the strategy reopens a wave for a
//! replacement replica on a fresh RNG stream.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smartred_core::audit::AuditPolicy;
use smartred_core::execution::{Assignment, TaskExecution, WaveStep};
use smartred_core::hedge::{HedgePolicy, HedgeTrigger};
use smartred_core::parallel::Threads;
use smartred_core::resilience::{
    DisciplineAction, NodeDiscipline, PoisonPolicy, QuarantinePolicy, TaskDiscipline,
};
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::disk::{DiskFaultPlan, FaultyDisk};
use smartred_desim::journal::{DepartureReason, Journal, RunEvent, WalWriter};
use smartred_desim::time::{SimDuration, SimTime};

use crate::checkpoint::{checkpoint_path, CheckpointState};
use crate::recovery::{self, RecoveryError, RecoveryReport};
use crate::report::{fold_into, report_from_journal, RuntimeReport};
use crate::worker::{JobAssignment, JobResult, PoolEvent, Worker, WorkerPool};
use crate::workload::Payload;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-thread count; `None` resolves like the sweep engine's
    /// [`Threads::Auto`] (the `SMARTRED_THREADS` environment variable,
    /// falling back to available parallelism).
    pub workers: Option<usize>,
    /// Bounded capacity of each worker's inbox.
    pub inbox_cap: usize,
    /// Bounded capacity of the submission queue; submissions beyond it are
    /// shed at the client.
    pub queue_cap: usize,
    /// Maximum tasks in flight; submissions past it wait in the queue.
    pub max_active: usize,
    /// Wall-clock deadline per job; a miss abandons the job and reissues.
    pub deadline: Duration,
    /// Optional cap on total jobs per task; hitting it fails the task.
    pub job_cap: Option<usize>,
    /// Whether to record the run journal (forced on when `wal` is set).
    pub journal: bool,
    /// Durable write-ahead log path. When set, every event is appended to
    /// this file before the coordinator acts on it, and
    /// [`Runtime::recover`] can restart the run from it.
    pub wal: Option<PathBuf>,
    /// Whether WAL appends `fdatasync` before returning (durable against
    /// power loss, not just process death). Flush-only (`false`) is
    /// faster and still survives any in-process crash.
    pub wal_sync: bool,
    /// Poison-task policy: tasks whose payload repeatedly crashes workers
    /// are failed rather than re-issued forever. `None` disables.
    pub poison: Option<PoisonPolicy>,
    /// Hung-worker threshold: a worker inside one `execute` call longer
    /// than this is respawned and its in-flight jobs re-dispatched under a
    /// fresh epoch. `None` disables hang supervision.
    pub hang_after: Option<Duration>,
    /// Node discipline: timeouts and crashes charge strikes; repeated
    /// strikes quarantine the worker, repeated quarantines blacklist it.
    /// `None` disables.
    pub discipline: Option<QuarantinePolicy>,
    /// Sliding window for strike expiry (see
    /// [`NodeDiscipline::strike_at`]).
    pub strike_window: Duration,
    /// Audit policy: spot-check verdicts against a local recomputation,
    /// charge weighted strikes for caught lies, void tainted verdicts, and
    /// re-tally open tasks the liar touched. Disabled by default.
    pub audit: AuditPolicy,
    /// Seed for the audit-selection counter stream (independent of worker
    /// fault seeds — see [`smartred_core::audit::AUDIT_STREAM`]).
    pub audit_seed: u64,
    /// Chaos hook: the coordinator "dies" abruptly after this many journal
    /// appends — no further events, verdicts, or dispatch bookkeeping —
    /// leaving the WAL exactly as a real crash would. Test-only.
    pub crash_after_events: Option<u64>,
    /// First global node id of this coordinator's worker pool. A sharded
    /// runtime gives each shard's sub-pool a disjoint id span (see
    /// [`smartred_core::execution::shard_worker_span`]) so journal events
    /// and discipline records from different shards never collide; a
    /// standalone runtime leaves it 0.
    pub node_base: u32,
    /// Group-commit batch: `fdatasync` the WAL every this-many appends
    /// instead of after every one. Decision events (verdicts, caps,
    /// poisonings) and shutdown always force a commit before their side
    /// effects, so exactly-once delivery is unaffected; only
    /// not-yet-committed *non*-decision tail events can be lost to power
    /// failure, which recovery handles identically to crashing earlier.
    /// `1` — the default — is the classic sync-every-append WAL.
    pub wal_batch: u64,
    /// Straggler hedging: a job that outlives the online latency-quantile
    /// estimate gets a duplicate twin on another worker; the first copy to
    /// report supplies the replica's vote and the loser is discarded.
    /// Verdict-invariant (votes are pure functions of
    /// `(seed, task, replica)`), so hedging changes *when* verdicts arrive,
    /// never what they say. `None` disables.
    pub hedge: Option<HedgePolicy>,
    /// Worker-assignment policy for dispatch. `Random` keeps the pool's
    /// historical round-robin-from-cursor scan; the deterministic
    /// alternatives order eligible workers through
    /// [`Assignment::pick`] before dispatch.
    pub assignment: Assignment,
    /// Per-record WAL checksums: each appended line carries an FNV-1a
    /// checksum of its canonical form, so recovery distinguishes a torn
    /// tail (dropped, resumed) from mid-file corruption (refused, with
    /// the damaged record's byte offset and seq). Off by default — a
    /// checksum-free WAL is byte-identical to the in-memory journal's
    /// JSONL and remains readable by older tooling.
    pub wal_checksum: bool,
    /// Checkpoint + compaction: once this many events have accumulated
    /// since the last checkpoint, the coordinator — at its next quiescent
    /// point (no open tasks, jobs, or parked work) — snapshots its state
    /// next to the WAL, truncates the log, and seals the fresh segment
    /// with a [`RunEvent::CheckpointTaken`] record. Recovery then replays
    /// snapshot + suffix instead of the whole history, so recovery time
    /// is bounded by the checkpoint interval, not uptime. `None`
    /// disables.
    pub checkpoint_every: Option<u64>,
    /// Disk-fault injection under the WAL file handle (seeded,
    /// deterministic): short writes, fsync failures, write-crash points,
    /// read-back bit flips. A WAL I/O error permanently poisons the
    /// writer and crashes the coordinator — recovery then proceeds from
    /// the durable prefix exactly as after a real power loss. Applies to
    /// the writer created by [`Runtime::start`]; [`Runtime::recover`]
    /// always reopens the real file. Test/bench only. `None` disables.
    pub disk_faults: Option<DiskFaultPlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: None,
            inbox_cap: 64,
            queue_cap: 256,
            max_active: 256,
            deadline: Duration::from_secs(2),
            job_cap: None,
            journal: true,
            wal: None,
            wal_sync: true,
            poison: Some(PoisonPolicy::default()),
            hang_after: None,
            discipline: None,
            strike_window: Duration::from_secs(10),
            audit: AuditPolicy::disabled(),
            audit_seed: 0,
            crash_after_events: None,
            node_base: 0,
            wal_batch: 1,
            hedge: None,
            assignment: Assignment::Random,
            wal_checksum: false,
            checkpoint_every: None,
            disk_faults: None,
        }
    }
}

/// Admission-control verdict for one submission.
///
/// Marked `#[must_use]`: silently dropping the outcome loses shed
/// notifications — a [`SubmitOutcome::Shed`] task was **not** admitted and
/// will never produce a verdict, so the caller must observe it.
#[must_use = "a Shed outcome means the task was never admitted and will produce no verdict"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted with spare in-flight capacity: dispatch begins immediately.
    Accepted {
        /// The task id assigned to the submission.
        task: u32,
    },
    /// Admitted into the bounded submission queue; dispatch starts once
    /// the in-flight task count drops below the cap. (The capacity read is
    /// advisory — a concurrent admission may reclassify, but the task is
    /// admitted either way.)
    Queued {
        /// The task id assigned to the submission.
        task: u32,
    },
    /// Load-shed: the submission queue is full (or the runtime has shut
    /// down). The task was **not** admitted; the caller owns retry policy.
    Shed,
}

/// The delivered outcome of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskVerdict {
    /// The task id from [`SubmitOutcome`].
    pub task: u32,
    /// The winning vote (`true` = honest answer); `None` when the task
    /// failed without a verdict (job cap or poisoning).
    pub vote: Option<bool>,
    /// The answer reported by the winning side, when a verdict was reached
    /// (`None` for verdicts resumed across a coordinator restart — votes
    /// are journaled, raw answers are not).
    pub answer: Option<bool>,
    /// Whether the task was poisoned (failed for repeatedly crashing its
    /// workers) rather than capped.
    pub poisoned: bool,
    /// First-dispatch → verdict latency, in journal units (seconds).
    pub latency_units: f64,
    /// Jobs dispatched for this task.
    pub jobs: u32,
}

/// Counts of how submissions fared at admission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted with spare in-flight capacity.
    pub accepted: u64,
    /// Submissions admitted into the queue under backpressure.
    pub queued: u64,
    /// Submissions shed at a full queue.
    pub shed: u64,
}

impl AdmissionStats {
    /// Total submission attempts.
    pub fn submitted(&self) -> u64 {
        self.accepted + self.queued + self.shed
    }

    /// Fraction of submission attempts shed (0 when nothing submitted).
    pub fn shed_rate(&self) -> f64 {
        let total = self.submitted();
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct AdmissionCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) queued: AtomicU64,
    pub(crate) shed: AtomicU64,
}

impl AdmissionCounters {
    pub(crate) fn snapshot(&self) -> AdmissionStats {
        AdmissionStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// One admitted submission, in flight to the coordinator.
pub(crate) struct Submission {
    pub(crate) task: u32,
    pub(crate) payload: Arc<Payload>,
    pub(crate) verdict_tx: Sender<TaskVerdict>,
}

/// One client → coordinator message: a task submission, or a durable
/// annotation event to journal into the WAL (workload bookkeeping such
/// as DAG stage verdicts — no tally state, but crash-recoverable).
pub(crate) enum ClientOp {
    Submit(Submission),
    Annotate(RunEvent),
}

/// A submission handle. Clones share the runtime's admission queue but
/// each clone receives verdicts only for its own submissions.
#[derive(Debug)]
pub struct Client {
    submit_tx: SyncSender<ClientOp>,
    verdict_tx: Sender<TaskVerdict>,
    verdict_rx: Receiver<TaskVerdict>,
    next_task: Arc<AtomicU32>,
    active: Arc<AtomicUsize>,
    max_active: usize,
    counters: Arc<AdmissionCounters>,
}

impl Client {
    /// Submits one task. Never blocks: a full queue sheds the submission
    /// and returns [`SubmitOutcome::Shed`] (task ids are opaque — an id
    /// burned by a shed submission is never reused for another task).
    pub fn submit(&self, payload: Payload) -> SubmitOutcome {
        let task = self.next_task.fetch_add(1, Ordering::Relaxed);
        let submission = Submission {
            task,
            payload: Arc::new(payload),
            verdict_tx: self.verdict_tx.clone(),
        };
        match self.submit_tx.try_send(ClientOp::Submit(submission)) {
            Ok(()) => {
                if self.active.load(Ordering::Relaxed) < self.max_active {
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Accepted { task }
                } else {
                    self.counters.queued.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Queued { task }
                }
            }
            Err(_) => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        }
    }

    /// Journals `event` durably into the coordinator's WAL. Annotations
    /// carry no tally state — recovery preserves and ignores them — but
    /// they share the WAL's ordering and fsync guarantees, so workload
    /// layers (e.g. DAG stage verdicts) can reconstruct their own
    /// bookkeeping from the same crash-consistent stream. Blocks if the
    /// admission queue is full (annotations are never shed); returns
    /// `false` once the runtime has shut down or crashed.
    pub fn annotate(&self, event: RunEvent) -> bool {
        self.submit_tx.send(ClientOp::Annotate(event)).is_ok()
    }

    /// Blocks for this client's next verdict; `None` once the runtime has
    /// shut down and no verdicts remain.
    pub fn recv(&self) -> Option<TaskVerdict> {
        self.verdict_rx.recv().ok()
    }

    /// Like [`recv`](Self::recv) with a timeout; `None` on timeout or
    /// shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict> {
        self.verdict_rx.recv_timeout(timeout).ok()
    }
}

impl Clone for Client {
    fn clone(&self) -> Self {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        Self {
            submit_tx: self.submit_tx.clone(),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            active: self.active.clone(),
            max_active: self.max_active,
            counters: self.counters.clone(),
        }
    }
}

/// The finished run: live report, admission tally, and the journal.
#[derive(Debug)]
pub struct RuntimeRun {
    /// Metrics accumulated live by the coordinator.
    pub report: RuntimeReport,
    /// How submissions fared at admission (client-side; shed submissions
    /// never reach the coordinator and are not journaled).
    pub admission: AdmissionStats,
    /// The recorded event stream (empty when journaling was disabled).
    pub journal: Journal,
    /// Whether the coordinator died at the chaos crash point
    /// ([`RuntimeConfig::crash_after_events`]) instead of finishing. A
    /// crashed run's report and journal end mid-stream, exactly as a real
    /// crash would leave the WAL.
    pub crashed: bool,
}

/// A live job-serving runtime: worker pool plus coordinator thread.
///
/// Create with [`Runtime::start`] (or [`Runtime::recover`] to resume a
/// crashed run from its WAL), submit through [`Runtime::client`] handles,
/// then drop every client and call [`Runtime::finish`] — the coordinator
/// drains in-flight tasks once all submission handles are gone and
/// `finish` returns the final [`RuntimeRun`].
#[derive(Debug)]
pub struct Runtime {
    pub(crate) submit_tx: Option<SyncSender<ClientOp>>,
    handle: JoinHandle<(RuntimeReport, Journal, bool)>,
    pub(crate) next_task: Arc<AtomicU32>,
    active: Arc<AtomicUsize>,
    counters: Arc<AdmissionCounters>,
    max_active: usize,
    crashed: Arc<AtomicBool>,
}

impl Runtime {
    /// Starts the worker pool and coordinator. `make_worker` builds the
    /// executor for each pool index — use [`crate::worker::FaultyWorker`]
    /// for seed-reproducible unreliability, or any custom [`Worker`]. The
    /// factory is retained: the supervisor calls it again to rebuild
    /// workers after panics and hung-thread respawns.
    pub fn start<S, F>(cfg: RuntimeConfig, strategy: S, make_worker: F) -> Self
    where
        S: RedundancyStrategy<bool> + Send + Sync + 'static,
        F: Fn(u32) -> Box<dyn Worker> + Send + Sync + 'static,
    {
        let journal = if cfg.journal || cfg.wal.is_some() {
            Journal::new()
        } else {
            Journal::disabled()
        };
        let wal = cfg
            .wal
            .as_ref()
            .map(|p| build_wal(p, &cfg).expect("create WAL file"));
        let RuntimeParts {
            worker_count,
            pool,
            submit_tx,
            submit_rx,
            result_rx,
            active,
            crashed,
            max_active,
        } = RuntimeParts::build(&cfg, Arc::new(make_worker));
        // Per-node vectors are indexed by *global* node id, so they span
        // `0..node_base + worker_count`; slots below the base belong to
        // other shards and stay untouched defaults.
        let node_span = cfg.node_base as usize + worker_count;
        let coordinator = Coordinator {
            journal,
            wal,
            strategy: Arc::new(strategy),
            time_base: 0,
            report: RuntimeReport::new(),
            tasks: HashMap::new(),
            jobs: HashMap::new(),
            deadlines: BinaryHeap::new(),
            pending: VecDeque::new(),
            rearm: VecDeque::new(),
            seeded: VecDeque::new(),
            resume: Vec::new(),
            next_job: 0,
            draining: false,
            events_logged: 0,
            crashed: false,
            decided: HashSet::new(),
            last_ckpt_events: 0,
            incarnations: vec![0; node_span],
            discipline: vec![NodeDiscipline::default(); node_span],
            quarantined_until: vec![None; node_span],
            blacklisted: vec![false; node_span],
            escalated: false,
            hedge: cfg
                .hedge
                .map(|p| HedgeTrigger::new(p).expect("invalid hedge policy")),
            hedge_checks: BinaryHeap::new(),
            hedge_pair: HashMap::new(),
            twin_origin: HashMap::new(),
            worker_loads: vec![0; node_span],
            assign_cursor: cfg.node_base,
            cfg,
            pool,
            submit_rx,
            result_rx,
            start: Instant::now(),
            active: active.clone(),
            crashed_flag: crashed.clone(),
        };
        spawn_runtime(
            coordinator,
            submit_tx,
            active,
            crashed,
            max_active,
            Arc::new(AtomicU32::new(0)),
        )
    }

    /// Restarts a crashed run from its write-ahead log.
    ///
    /// The WAL prefix (up to a tolerated torn final record) is replayed
    /// into full coordinator state — open tasks with their exact vote
    /// tallies and wave positions, outstanding replicas, admission
    /// backlog, node strikes, epochs, and poison charges. `roster` maps
    /// task ids to payloads (payloads are not journaled): ids already
    /// decided in the WAL are skipped (their verdicts were durable before
    /// delivery — they are never re-run or re-delivered), open ids resume,
    /// and unseen ids are admitted fresh under their original numbers so
    /// the deterministic fault draws keyed by `(seed, task, replica)`
    /// line up with an uninterrupted run.
    ///
    /// Returns the runtime, a [`Client`] that will receive the verdicts of
    /// resumed and re-admitted tasks, and a [`RecoveryReport`].
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] when the config has no WAL path, the file cannot
    /// be read, a non-final record is malformed, or the event stream
    /// contradicts the deterministic strategy replay.
    pub fn recover<S, F>(
        cfg: RuntimeConfig,
        strategy: S,
        make_worker: F,
        roster: &[(u32, Payload)],
    ) -> Result<(Self, Client, RecoveryReport), RecoveryError>
    where
        S: RedundancyStrategy<bool> + Send + Sync + 'static,
        F: Fn(u32) -> Box<dyn Worker> + Send + Sync + 'static,
    {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        let (runtime, report) =
            Self::recover_with(cfg, strategy, make_worker, roster, &verdict_tx)?;
        let client = Client {
            submit_tx: runtime.submit_tx.clone().expect("runtime just started"),
            verdict_tx,
            verdict_rx,
            next_task: runtime.next_task.clone(),
            active: runtime.active.clone(),
            max_active: runtime.max_active,
            counters: runtime.counters.clone(),
        };
        Ok((runtime, client, report))
    }

    /// [`Runtime::recover`] with the verdict channel supplied by the
    /// caller: the sharded runtime recovers every shard into one shared
    /// verdict stream. Verdicts of resumed and re-admitted tasks arrive on
    /// `verdict_tx`'s receiver.
    pub(crate) fn recover_with<S, F>(
        cfg: RuntimeConfig,
        strategy: S,
        make_worker: F,
        roster: &[(u32, Payload)],
        verdict_tx: &Sender<TaskVerdict>,
    ) -> Result<(Self, RecoveryReport), RecoveryError>
    where
        S: RedundancyStrategy<bool> + Send + Sync + 'static,
        F: Fn(u32) -> Box<dyn Worker> + Send + Sync + 'static,
    {
        let path = cfg.wal.clone().ok_or(RecoveryError::NoWal)?;
        // Read as bytes: an injected bit flip can break UTF-8 itself, and
        // that too must surface as corruption, not an unreadable file.
        let bytes = std::fs::read(&path)?;
        let text = String::from_utf8_lossy(&bytes);
        let prefix = match Journal::from_jsonl_prefix(&text) {
            Ok(prefix) => prefix,
            Err(err) => {
                // In-place corruption of an acknowledged record: recovery
                // must never resume past it. Quarantine the damaged
                // segment for forensics so a retry cannot silently
                // re-trip — the error names the byte offset and seq.
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".quarantined");
                let _ = std::fs::rename(&path, PathBuf::from(quarantined));
                return Err(RecoveryError::Parse(err));
            }
        };

        // Disambiguate the segment: a WAL beginning with a
        // `CheckpointTaken` seal replays snapshot + suffix; one beginning
        // at seq 0 is the full history (any snapshot beside it is a
        // leftover from a crash before truncation — redundant, ignored);
        // an *empty* segment next to a valid snapshot is a crash between
        // truncation and the seal record, healed from the snapshot alone.
        let ckpt = checkpoint_path(&path);
        let mut heal_seal = false;
        let base: Option<CheckpointState> = match prefix.journal.events().first() {
            Some(first) => match first.event {
                RunEvent::CheckpointTaken { events, digest } => {
                    if first.seq != events {
                        return Err(RecoveryError::Corrupt(format!(
                            "checkpoint record seq {} does not match its \
                             event count {events}",
                            first.seq
                        )));
                    }
                    let snap = CheckpointState::load(&ckpt).map_err(|msg| {
                        RecoveryError::Corrupt(format!(
                            "WAL begins at checkpoint {events} but its \
                             snapshot is unusable: {msg}"
                        ))
                    })?;
                    if snap.events != events || snap.digest() != digest {
                        return Err(RecoveryError::Corrupt(format!(
                            "snapshot does not match the WAL's checkpoint \
                             record (snapshot {}/{:016x}, record \
                             {events}/{digest:016x})",
                            snap.events,
                            snap.digest()
                        )));
                    }
                    Some(snap)
                }
                _ if first.seq == 0 => None,
                _ => {
                    return Err(RecoveryError::Corrupt(format!(
                        "WAL segment starts mid-stream at seq {} with no \
                         checkpoint record",
                        first.seq
                    )));
                }
            },
            None if ckpt.exists() => {
                let snap = CheckpointState::load(&ckpt).map_err(|msg| {
                    RecoveryError::Corrupt(format!(
                        "empty WAL segment with an unusable snapshot: {msg}"
                    ))
                })?;
                heal_seal = true;
                Some(snap)
            }
            None => None,
        };

        let strategy = Arc::new(strategy);
        let rebuilt = recovery::rebuild(&prefix.journal, &cfg, &strategy, base.as_ref())?;
        let mut wal = WalWriter::resume(&path, prefix.valid_bytes as u64, cfg.wal_sync)?
            .with_batch(cfg.wal_batch)
            .with_checksums(cfg.wal_checksum);
        let events_replayed = prefix.journal.len();
        let mut journal = prefix.journal;
        if heal_seal {
            let snap = base.as_ref().expect("healing implies a snapshot");
            journal = Journal::resume_at(snap.events);
            journal.record(
                snap.last_at,
                RunEvent::CheckpointTaken {
                    events: snap.events,
                    digest: snap.digest(),
                },
            );
            let entry = journal.events().last().expect("just recorded");
            wal.append(entry)?;
            wal.commit()?;
        }

        let RuntimeParts {
            worker_count,
            mut pool,
            submit_tx,
            submit_rx,
            result_rx,
            active,
            crashed,
            max_active,
        } = RuntimeParts::build(&cfg, Arc::new(make_worker));
        let node_span = cfg.node_base as usize + worker_count;

        let mut tasks = HashMap::new();
        let mut rearm: VecDeque<(u32, u32, u32, u32)> = VecDeque::new();
        let mut pending = VecDeque::new();
        let tasks_decided = rebuilt.decided.len();
        for (task, rt) in rebuilt.open {
            let payload = roster
                .iter()
                .find(|(id, _)| *id == task)
                .map(|(_, p)| Arc::new(p.clone()))
                .ok_or_else(|| {
                    RecoveryError::Corrupt(format!("open task {task} missing from roster"))
                })?;
            for &(job, replica) in &rt.in_flight {
                rearm.push_back((job, task, replica, rt.epoch));
            }
            for replica in rt.dispatched..rt.replicas {
                pending.push_back((task, replica));
            }
            tasks.insert(
                task,
                TaskState {
                    exec: rt.exec,
                    payload,
                    verdict_tx: verdict_tx.clone(),
                    replicas: rt.replicas,
                    timeouts: rt.timeouts,
                    first_dispatch: rt.first_dispatch,
                    answers: [None, None],
                    live_jobs: rt.in_flight.iter().map(|&(j, _)| j).collect(),
                    epoch: rt.epoch,
                    poison: rt.poison,
                    returns: rt.returns,
                    must_audit: rt.must_audit,
                },
            );
        }
        recovery::sort_rearm(&mut rearm);
        let jobs_rearmed = rearm.len();
        let tasks_resumed = tasks.len();
        let mut resume: Vec<u32> = tasks.keys().copied().collect();
        resume.sort_unstable();

        // Replicas parked before the crash dispatch in task order — the
        // same order a drain would have processed them.
        let mut pending: Vec<(u32, u32)> = pending.into_iter().collect();
        pending.sort_unstable();
        let pending: VecDeque<(u32, u32)> = pending.into_iter().collect();

        // Roster entries the WAL never saw are admitted fresh, under
        // their original ids, ahead of any new submissions.
        let mut seeded = VecDeque::new();
        for (task, payload) in roster {
            if rebuilt.decided.contains(task) || tasks.contains_key(task) {
                continue;
            }
            seeded.push_back(Submission {
                task: *task,
                payload: Arc::new(payload.clone()),
                verdict_tx: verdict_tx.clone(),
            });
        }
        let tasks_seeded = seeded.len();

        let mut discipline = vec![NodeDiscipline::default(); node_span];
        let mut incarnations = vec![0u32; node_span];
        let mut quarantined_until = vec![None; node_span];
        let mut blacklisted = vec![false; node_span];
        for (node, d) in rebuilt.discipline {
            if let Some(slot) = discipline.get_mut(node as usize) {
                *slot = d;
            }
        }
        for (node, inc) in rebuilt.incarnations {
            if let Some(slot) = incarnations.get_mut(node as usize) {
                *slot = inc;
            }
        }
        for (node, until) in rebuilt.quarantined_until {
            if pool.node_ids().contains(&node) {
                quarantined_until[node as usize] = Some(until);
                pool.set_enabled(node, false);
            }
        }
        for node in rebuilt.blacklisted {
            if pool.node_ids().contains(&node) {
                blacklisted[node as usize] = true;
                pool.set_enabled(node, false);
            }
        }

        let max_roster = roster.iter().map(|&(id, _)| id).max();
        let next_task = rebuilt
            .max_task
            .into_iter()
            .chain(max_roster)
            .max()
            .map_or(0, |m| m + 1);

        let report = match &base {
            Some(snap) => {
                // Snapshot + suffix fold: checkpoints happen only at
                // quiescence, so no per-task accumulator straddles the
                // boundary and the continued fold is bit-identical to a
                // full-history fold.
                let mut report = snap.report.clone();
                fold_into(&mut report, journal.events());
                report
            }
            None => report_from_journal(&journal),
        };
        let escalated = report.audit_failures > 0;
        let time_base = rebuilt.last_at.as_micros();
        let last_ckpt_events = journal.next_seq();
        active.store(tasks.len(), Ordering::Relaxed);

        let coordinator = Coordinator {
            journal,
            wal: Some(wal),
            strategy,
            time_base,
            report,
            tasks,
            jobs: HashMap::new(),
            deadlines: BinaryHeap::new(),
            pending,
            rearm,
            seeded,
            resume,
            next_job: rebuilt.next_job,
            draining: false,
            events_logged: 0,
            crashed: false,
            decided: rebuilt.decided,
            last_ckpt_events,
            incarnations,
            discipline,
            quarantined_until,
            blacklisted,
            escalated,
            hedge: cfg
                .hedge
                .map(|p| HedgeTrigger::new(p).expect("invalid hedge policy")),
            hedge_checks: BinaryHeap::new(),
            hedge_pair: HashMap::new(),
            twin_origin: HashMap::new(),
            worker_loads: vec![0; node_span],
            assign_cursor: cfg.node_base,
            cfg,
            pool,
            submit_rx,
            result_rx,
            start: Instant::now(),
            active: active.clone(),
            crashed_flag: crashed.clone(),
        };
        let report = RecoveryReport {
            torn_tail: prefix.torn,
            events_replayed,
            checkpoint_events: base.as_ref().map_or(0, |s| s.events),
            tasks_resumed,
            tasks_decided,
            tasks_seeded,
            jobs_rearmed,
            report: coordinator.report.clone(),
        };
        let runtime = spawn_runtime(
            coordinator,
            submit_tx,
            active,
            crashed,
            max_active,
            Arc::new(AtomicU32::new(next_task)),
        );
        Ok((runtime, report))
    }

    /// Creates a submission handle.
    pub fn client(&self) -> Client {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        Client {
            submit_tx: self.submit_tx.clone().expect("runtime already finished"),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            active: self.active.clone(),
            max_active: self.max_active,
            counters: self.counters.clone(),
        }
    }

    /// Whether the coordinator has hit its chaos crash point. Once true,
    /// submissions go nowhere and [`Runtime::finish`] returns promptly
    /// with [`RuntimeRun::crashed`] set.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Shuts down: stops accepting submissions, waits for in-flight tasks
    /// to drain and the pool to join, and returns the run.
    ///
    /// Every [`Client`] must be dropped first — the coordinator drains only
    /// once all submission handles are gone, so `finish` blocks while any
    /// client could still submit.
    pub fn finish(mut self) -> RuntimeRun {
        drop(self.submit_tx.take());
        let (report, journal, crashed) = self.handle.join().expect("coordinator panicked");
        RuntimeRun {
            report,
            admission: self.counters.snapshot(),
            journal,
            crashed,
        }
    }
}

/// The shared channel/pool scaffolding of [`Runtime::start`] and
/// [`Runtime::recover`].
struct RuntimeParts {
    worker_count: usize,
    pool: WorkerPool,
    submit_tx: SyncSender<ClientOp>,
    submit_rx: Receiver<ClientOp>,
    result_rx: Receiver<PoolEvent>,
    active: Arc<AtomicUsize>,
    crashed: Arc<AtomicBool>,
    max_active: usize,
}

impl RuntimeParts {
    fn build(
        cfg: &RuntimeConfig,
        make_worker: Arc<dyn Fn(u32) -> Box<dyn Worker> + Send + Sync>,
    ) -> Self {
        let worker_count = cfg.workers.unwrap_or_else(|| Threads::Auto.get()).max(1);
        let (submit_tx, submit_rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        let (result_tx, result_rx) = mpsc::channel();
        let pool = WorkerPool::spawn(
            worker_count,
            cfg.node_base,
            cfg.inbox_cap,
            result_tx,
            make_worker,
        );
        Self {
            worker_count,
            pool,
            submit_tx,
            submit_rx,
            result_rx,
            active: Arc::new(AtomicUsize::new(0)),
            crashed: Arc::new(AtomicBool::new(false)),
            max_active: cfg.max_active.max(1),
        }
    }
}

/// Builds the WAL writer of a fresh run: the real file, or a
/// fault-injecting [`FaultyDisk`] under it when
/// [`RuntimeConfig::disk_faults`] is set, with the configured group-commit
/// batch and checksum framing.
fn build_wal(path: &std::path::Path, cfg: &RuntimeConfig) -> std::io::Result<WalWriter> {
    let writer = match cfg.disk_faults {
        Some(plan) => {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            WalWriter::with_disk(Box::new(FaultyDisk::create(path, plan)?), cfg.wal_sync)
        }
        None => WalWriter::create(path, cfg.wal_sync)?,
    };
    Ok(writer
        .with_batch(cfg.wal_batch)
        .with_checksums(cfg.wal_checksum))
}

fn spawn_runtime<S: RedundancyStrategy<bool> + Send + Sync + 'static>(
    coordinator: Coordinator<S>,
    submit_tx: SyncSender<ClientOp>,
    active: Arc<AtomicUsize>,
    crashed: Arc<AtomicBool>,
    max_active: usize,
    next_task: Arc<AtomicU32>,
) -> Runtime {
    let handle = std::thread::Builder::new()
        .name("smartred-coordinator".into())
        .spawn(move || coordinator.run())
        .expect("spawn coordinator thread");
    Runtime {
        submit_tx: Some(submit_tx),
        handle,
        next_task,
        active,
        counters: Arc::new(AdmissionCounters::default()),
        max_active,
        crashed,
    }
}

/// Per-task redundancy state.
struct TaskState<S> {
    exec: TaskExecution<bool, Arc<S>>,
    payload: Arc<Payload>,
    verdict_tx: Sender<TaskVerdict>,
    /// Replica indices issued so far (reissues advance it).
    replicas: u32,
    /// Timeouts charged so far (1-based retry attempts).
    timeouts: u32,
    first_dispatch: Option<SimTime>,
    /// Last answer reported by a `false`-vote (index 0) / `true`-vote
    /// (index 1) replica, for verdict delivery.
    answers: [Option<bool>; 2],
    /// Dispatched, unresolved job ids.
    live_jobs: Vec<u32>,
    /// Replica epoch: bumped when in-flight jobs are re-dispatched, so
    /// replies from the superseded dispatch are rejected as stale.
    epoch: u32,
    /// Worker-crash charges toward the poison limit.
    poison: TaskDiscipline,
    /// Every tallied return as `(job, node, vote)`, the audit layer's
    /// evidence: which node claimed what. Cleared on void/re-tally.
    returns: Vec<(u32, u32, bool)>,
    /// Set when a probationary node (fresh out of quarantine) contributed
    /// a result: the verdict must be audited regardless of the spot draw.
    must_audit: bool,
}

/// A dispatched, unresolved job.
struct JobInfo {
    task: u32,
    worker: u32,
    replica: u32,
    epoch: u32,
    /// Stamp of this dispatch, feeding the hedge trigger's latency
    /// estimator when the job genuinely resolves.
    dispatched_at: SimTime,
}

/// How a task ends.
#[derive(Clone, Copy)]
enum Outcome {
    Verdict(bool),
    Capped,
    Poisoned,
}

struct Coordinator<S> {
    cfg: RuntimeConfig,
    strategy: Arc<S>,
    pool: WorkerPool,
    submit_rx: Receiver<ClientOp>,
    result_rx: Receiver<PoolEvent>,
    start: Instant,
    /// Stamp offset in micros: 0 for a fresh run, the last replayed
    /// event's stamp after recovery, so journal time stays monotone across
    /// restarts.
    time_base: u64,
    journal: Journal,
    wal: Option<WalWriter>,
    report: RuntimeReport,
    tasks: HashMap<u32, TaskState<S>>,
    jobs: HashMap<u32, JobInfo>,
    /// `(deadline, job, epoch)` — an entry whose epoch no longer matches
    /// the job's record is stale (the job was re-dispatched) and skipped.
    deadlines: BinaryHeap<Reverse<(Instant, u32, u32)>>,
    /// Replicas decided but not yet handed to a worker (all inboxes full).
    pending: VecDeque<(u32, u32)>,
    /// In-flight jobs to re-dispatch without new journal records, as
    /// `(job, task, replica, epoch)` — from hung-worker respawns and WAL
    /// recovery.
    rearm: VecDeque<(u32, u32, u32, u32)>,
    /// Recovered roster tasks awaiting first admission, drained ahead of
    /// the external submission queue.
    seeded: VecDeque<Submission>,
    /// Resumed open tasks to nudge once at startup: a crash can land
    /// exactly between a recorded vote (or abandon) and the strategy step
    /// it should have triggered, leaving a task with zero outstanding
    /// replicas and nothing queued. `advance` is a no-op for tasks whose
    /// votes are still outstanding, so nudging every resumed task is safe.
    resume: Vec<u32>,
    next_job: u32,
    active: Arc<AtomicUsize>,
    draining: bool,
    /// Journal appends so far, for the chaos crash threshold.
    events_logged: u64,
    crashed: bool,
    crashed_flag: Arc<AtomicBool>,
    /// Every task ever decided (verdict, cap, or poison durable) — the
    /// exactly-once set a checkpoint snapshot carries forward.
    decided: HashSet<u32>,
    /// `Journal::next_seq` at the last checkpoint (or recovery), for the
    /// [`RuntimeConfig::checkpoint_every`] accumulation threshold.
    last_ckpt_events: u64,
    /// Per-worker restart counters (crash rebuilds + hang respawns).
    incarnations: Vec<u32>,
    /// Per-worker strike state under `cfg.discipline`.
    discipline: Vec<NodeDiscipline>,
    /// Release stamps of currently quarantined workers.
    quarantined_until: Vec<Option<SimTime>>,
    /// Permanently blacklisted workers.
    blacklisted: Vec<bool>,
    /// Whether any audit has ever caught a liar — switches spot-checking
    /// to [`AuditPolicy::escalated_rate`]. Rebuilt from the journal on
    /// recovery (`report.audit_failures > 0`).
    escalated: bool,
    /// The straggler-hedging trigger (shared decision surface with the
    /// simulators). Estimator state is not journaled: a recovered
    /// coordinator re-warms from scratch, which only delays hedging and
    /// never changes a vote.
    hedge: Option<HedgeTrigger>,
    /// Armed hedge checks as `(fire_at, origin job, dispatch epoch)`. An
    /// entry whose origin has resolved, been superseded (epoch mismatch),
    /// or whose task moved to a new epoch is skipped — the double-fire
    /// guard against audit voids and deadline reissues.
    hedge_checks: BinaryHeap<Reverse<(Instant, u32, u32)>>,
    /// Live hedge pairs, both directions (origin ↔ twin).
    hedge_pair: HashMap<u32, u32>,
    /// Twin → origin, held until the twin settles; terminal journal
    /// events of a pair always carry the *origin* job id (see
    /// [`Self::fire_hedges`]), so recovery replays the pair as one
    /// logical replica.
    twin_origin: HashMap<u32, u32>,
    /// Per-worker dispatch counts, indexed by global node id — the load
    /// signal of [`Assignment::LeastLoaded`].
    worker_loads: Vec<u64>,
    /// Rotation cursor of [`Assignment::RoundRobin`].
    assign_cursor: u32,
}

/// Poll tick: bounds how long the loop waits before re-checking the
/// submission queue and parked dispatches.
const TICK: Duration = Duration::from_millis(1);

impl<S: RedundancyStrategy<bool>> Coordinator<S> {
    fn run(mut self) -> (RuntimeReport, Journal, bool) {
        let resume = std::mem::take(&mut self.resume);
        for task in resume {
            if self.crashed {
                break;
            }
            let at = self.stamp();
            self.advance(task, at);
        }
        loop {
            if self.crashed {
                break;
            }
            self.admit();
            self.supervise_hangs();
            self.release_quarantines();
            self.drain_pending();
            self.fire_hedges(Instant::now());
            self.expire_deadlines(Instant::now());
            if self.crashed {
                break;
            }
            if self.draining && self.tasks.is_empty() && self.seeded.is_empty() {
                break;
            }
            if self.tasks.is_empty() && self.seeded.is_empty() {
                self.maybe_checkpoint();
                if self.crashed {
                    break;
                }
                // Nothing in flight: block on the submission queue.
                match self.submit_rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(op) => self.admit_op(op),
                    Err(RecvTimeoutError::Disconnected) => self.draining = true,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            } else {
                let wait = match self.deadlines.peek() {
                    Some(&Reverse((deadline, _, _))) => {
                        deadline.saturating_duration_since(Instant::now()).min(TICK)
                    }
                    None => TICK,
                };
                match self.result_rx.recv_timeout(wait) {
                    Ok(event) => {
                        self.on_pool_event(event);
                        while !self.crashed {
                            match self.result_rx.try_recv() {
                                Ok(more) => self.on_pool_event(more),
                                Err(_) => break,
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    // All workers gone: nothing can resolve; stop.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        if !self.crashed {
            let end = self.stamp();
            if self.log(end, RunEvent::RunEnded) {
                self.commit_wal();
                self.report.makespan_units = end.as_units();
            }
        }
        let crashed = self.crashed;
        self.pool.shutdown();
        (self.report, self.journal, crashed)
    }

    /// Monotone wall-clock stamp: micros since runtime start (plus the
    /// recovered base), so 1 journal unit = 1 second of wall time.
    fn stamp(&self) -> SimTime {
        SimTime::from_micros(self.time_base + self.start.elapsed().as_micros() as u64)
    }

    /// Records one event: in-memory journal first, then the durable WAL
    /// append — `log` returns only after the record would survive a
    /// process crash, and callers act on the event *after* it returns
    /// (write-ahead). Under group commit (`RuntimeConfig::wal_batch`
    /// above 1) the append is flushed but possibly not yet fsync'd;
    /// decision events call [`Self::commit_wal`] before their side
    /// effects to close the power-failure window.
    ///
    /// Returns `false` when the coordinator is dead: either it already
    /// crashed, or this very append hit the chaos threshold
    /// ([`RuntimeConfig::crash_after_events`]). A `false` return means the
    /// event is durable but the caller must not perform its side effects —
    /// exactly the state a real crash between "append" and "act" leaves.
    fn log(&mut self, at: SimTime, event: RunEvent) -> bool {
        if self.crashed {
            return false;
        }
        self.journal.record(at, event);
        if let Some(wal) = self.wal.as_mut() {
            let entry = self
                .journal
                .events()
                .last()
                .expect("journal is enabled whenever a WAL is configured");
            if wal.append(entry).is_err() {
                // The record may not be durable, so the coordinator must
                // not act on it. A disk fault is a coordinator crash: the
                // writer is poisoned (a failed fsync can silently drop
                // acknowledged pages), and recovery resumes from the
                // WAL's durable prefix exactly as after a power loss.
                self.crashed = true;
                self.crashed_flag.store(true, Ordering::Release);
                return false;
            }
        }
        self.events_logged += 1;
        if let Some(limit) = self.cfg.crash_after_events {
            if self.events_logged >= limit {
                self.crashed = true;
                self.crashed_flag.store(true, Ordering::Release);
                return false;
            }
        }
        true
    }

    /// Forces the WAL's pending group-commit batch to disk. The barrier
    /// between logging a decision event and performing its side effects:
    /// a verdict is never delivered before it is fsync-durable.
    fn commit_wal(&mut self) {
        if self.crashed {
            return;
        }
        if let Some(wal) = self.wal.as_mut() {
            if wal.commit().is_err() {
                // Same contract as a failed append: the batch may not be
                // durable, so whatever side effect this commit was
                // guarding must not happen. Die; recover from the prefix.
                self.crashed = true;
                self.crashed_flag.store(true, Ordering::Release);
            }
        }
    }

    /// Takes a checkpoint when one is due and the coordinator is
    /// quiescent — no open tasks, no in-flight jobs, nothing parked — so
    /// the snapshot needs no open-task state and the suffix fold starts
    /// from a clean slate.
    fn maybe_checkpoint(&mut self) {
        let Some(every) = self.cfg.checkpoint_every else {
            return;
        };
        if self.crashed || self.wal.is_none() {
            return;
        }
        let quiescent = self.tasks.is_empty()
            && self.seeded.is_empty()
            && self.pending.is_empty()
            && self.rearm.is_empty()
            && self.jobs.is_empty();
        if !quiescent {
            return;
        }
        if self
            .journal
            .next_seq()
            .saturating_sub(self.last_ckpt_events)
            < every.max(1)
        {
            return;
        }
        self.take_checkpoint();
    }

    /// Commits the WAL, atomically stores the snapshot, truncates the
    /// segment, and seals the fresh segment with a
    /// [`RunEvent::CheckpointTaken`] record whose `seq` equals the
    /// compacted event count. Every crash window inside this sequence is
    /// recoverable — see the `checkpoint` module docs; an I/O failure
    /// either leaves the old segment intact (snapshot store) or poisons
    /// the writer and crashes the coordinator (truncate/seal).
    fn take_checkpoint(&mut self) {
        self.commit_wal();
        if self.crashed {
            return;
        }
        let Some(path) = self.cfg.wal.clone() else {
            return;
        };
        let at = self.stamp();
        let events = self.journal.next_seq();
        let mut decided: Vec<u32> = self.decided.iter().copied().collect();
        decided.sort_unstable();
        let blacklisted: Vec<u32> = (0..self.blacklisted.len() as u32)
            .filter(|&n| self.blacklisted[n as usize])
            .collect();
        let incarnations: Vec<(u32, u32)> = self
            .incarnations
            .iter()
            .enumerate()
            .filter(|&(_, &inc)| inc > 0)
            .map(|(n, &inc)| (n as u32, inc))
            .collect();
        let quarantines: Vec<(u32, u64)> = self
            .quarantined_until
            .iter()
            .enumerate()
            .filter_map(|(n, until)| until.map(|t| (n as u32, t.as_micros())))
            .collect();
        let discipline: Vec<(u32, (u32, u32, u64, u32))> = self
            .discipline
            .iter()
            .enumerate()
            .map(|(n, d)| (n as u32, d.to_parts()))
            .filter(|&(_, parts)| parts != NodeDiscipline::default().to_parts())
            .collect();
        let state = CheckpointState {
            events,
            last_at: at,
            next_job: self.next_job,
            decided,
            blacklisted,
            incarnations,
            quarantines,
            discipline,
            report: self.report.clone(),
        };
        let digest = state.digest();
        if state.store(&checkpoint_path(&path)).is_err() {
            // The old WAL is fully intact — skip this checkpoint and try
            // again only after another interval's worth of events.
            self.last_ckpt_events = events;
            return;
        }
        if let Some(wal) = self.wal.as_mut() {
            if wal.truncate().is_err() {
                self.crashed = true;
                self.crashed_flag.store(true, Ordering::Release);
                return;
            }
        }
        if self.log(at, RunEvent::CheckpointTaken { events, digest }) {
            self.commit_wal();
        }
        self.last_ckpt_events = self.journal.next_seq();
    }

    fn admit(&mut self) {
        while self.tasks.len() < self.cfg.max_active.max(1) && !self.crashed {
            if let Some(sub) = self.seeded.pop_front() {
                self.admit_one(sub);
                continue;
            }
            match self.submit_rx.try_recv() {
                Ok(op) => self.admit_op(op),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.draining = true;
                    break;
                }
            }
        }
        self.active.store(self.tasks.len(), Ordering::Relaxed);
    }

    fn admit_op(&mut self, op: ClientOp) {
        match op {
            ClientOp::Submit(sub) => self.admit_one(sub),
            ClientOp::Annotate(event) => {
                // Write-ahead like any decision event: durable before the
                // caller can observe the annotation took effect.
                let at = self.stamp();
                if self.log(at, event) {
                    self.commit_wal();
                }
            }
        }
    }

    fn admit_one(&mut self, sub: Submission) {
        let mut exec = TaskExecution::new(self.strategy.clone());
        if let Some(cap) = self.cfg.job_cap {
            exec = exec.with_job_cap(cap);
        }
        self.tasks.insert(
            sub.task,
            TaskState {
                exec,
                payload: sub.payload,
                verdict_tx: sub.verdict_tx,
                replicas: 0,
                timeouts: 0,
                first_dispatch: None,
                answers: [None, None],
                live_jobs: Vec::new(),
                epoch: 0,
                poison: TaskDiscipline::default(),
                returns: Vec::new(),
                must_audit: false,
            },
        );
        self.active.store(self.tasks.len(), Ordering::Relaxed);
        let at = self.stamp();
        self.advance(sub.task, at);
    }

    /// Steps the task's strategy until it parks (pending/verdict/cap),
    /// queueing any opened wave's replicas for dispatch.
    fn advance(&mut self, task: u32, at: SimTime) {
        loop {
            let step = {
                let Some(state) = self.tasks.get_mut(&task) else {
                    return;
                };
                state.exec.step_wave()
            };
            match step {
                WaveStep::Wave { wave, jobs } => {
                    // Wave durable before its replicas become dispatchable.
                    let alive = self.log(
                        at,
                        RunEvent::WaveOpened {
                            task,
                            wave: wave as u32,
                            jobs: jobs as u32,
                        },
                    );
                    if !alive {
                        return;
                    }
                    let state = self.tasks.get_mut(&task).expect("task is live");
                    let first_replica = state.replicas;
                    state.replicas += jobs as u32;
                    for replica in first_replica..first_replica + jobs as u32 {
                        self.pending.push_back((task, replica));
                    }
                }
                WaveStep::Pending => return,
                WaveStep::Verdict(v) => {
                    self.finalize(task, Outcome::Verdict(v), at);
                    return;
                }
                WaveStep::Capped { .. } => {
                    self.finalize(task, Outcome::Capped, at);
                    return;
                }
            }
        }
    }

    /// Hands an assignment to a worker under the configured assignment
    /// policy. `avoid` — a hedge twin's origin worker — is excluded unless
    /// it is the only enabled worker. [`Assignment::Random`] with no
    /// exclusion delegates to the pool's historical round-robin scan, so
    /// the default configuration's dispatch order is untouched.
    fn dispatch_to_pool(
        &mut self,
        assignment: JobAssignment,
        avoid: Option<u32>,
    ) -> Result<u32, JobAssignment> {
        if self.cfg.assignment == Assignment::Random && avoid.is_none() {
            return self.pool.try_dispatch(assignment).inspect(|&worker| {
                self.worker_loads[worker as usize] += 1;
            });
        }
        let mut eligible: Vec<u32> = self
            .pool
            .node_ids()
            .filter(|&n| self.pool.is_enabled(n) && Some(n) != avoid)
            .collect();
        if eligible.is_empty() {
            // Only the avoided worker remains enabled: waive the exclusion.
            eligible = self
                .pool
                .node_ids()
                .filter(|&n| self.pool.is_enabled(n))
                .collect();
        }
        if eligible.is_empty() {
            return Err(assignment);
        }
        // `node_ids()` yields ascending ids, so `eligible` is sorted and
        // the pick is a pure function of the eligible set.
        let order: Vec<u32> = if self.cfg.assignment == Assignment::Random {
            eligible
        } else {
            let loads: Vec<u64> = eligible
                .iter()
                .map(|&n| self.worker_loads[n as usize])
                .collect();
            let at = self
                .cfg
                .assignment
                .pick(&eligible, &loads, self.assign_cursor, 0);
            let mut order = Vec::with_capacity(eligible.len());
            order.extend_from_slice(&eligible[at..]);
            order.extend_from_slice(&eligible[..at]);
            order
        };
        match self.pool.try_dispatch_ordered(assignment, &order) {
            Ok(worker) => {
                self.assign_cursor = worker.wrapping_add(1);
                self.worker_loads[worker as usize] += 1;
                Ok(worker)
            }
            Err(back) => Err(back),
        }
    }

    /// Arms a hedge check for a just-dispatched job, if the trigger is
    /// warm and the threshold beats the deadline (hedging past the
    /// deadline would duplicate a job the timeout path is about to
    /// abandon anyway).
    fn arm_hedge(&mut self, job: u32, epoch: u32, dispatched: Instant) {
        let Some(threshold) = self.hedge.as_ref().and_then(|t| t.threshold()) else {
            return;
        };
        if threshold < self.cfg.deadline.as_secs_f64() {
            self.hedge_checks.push(Reverse((
                dispatched + Duration::from_secs_f64(threshold),
                job,
                epoch,
            )));
        }
    }

    /// Hands parked replicas to workers, stopping at the first refusal
    /// (every inbox full) — the next tick retries. Re-armed jobs (hung
    /// respawns, recovery) go first and are *not* re-journaled: they are
    /// the same logical jobs the log already counted.
    fn drain_pending(&mut self) {
        while let Some((job, task, replica, epoch)) = self.rearm.pop_front() {
            let Some(state) = self.tasks.get(&task) else {
                continue; // task decided (e.g. poisoned) while parked
            };
            let assignment = JobAssignment {
                job,
                task,
                replica,
                epoch,
                payload: state.payload.clone(),
            };
            match self.dispatch_to_pool(assignment, None) {
                Ok(worker) => {
                    let now = Instant::now();
                    self.jobs.insert(
                        job,
                        JobInfo {
                            task,
                            worker,
                            replica,
                            epoch,
                            dispatched_at: self.stamp(),
                        },
                    );
                    self.deadlines
                        .push(Reverse((now + self.cfg.deadline, job, epoch)));
                    self.arm_hedge(job, epoch, now);
                }
                Err(back) => {
                    self.rearm
                        .push_front((back.job, back.task, back.replica, back.epoch));
                    return;
                }
            }
        }
        while let Some((task, replica)) = self.pending.pop_front() {
            let Some(state) = self.tasks.get(&task) else {
                continue;
            };
            let job = self.next_job;
            let epoch = state.epoch;
            let assignment = JobAssignment {
                job,
                task,
                replica,
                epoch,
                payload: state.payload.clone(),
            };
            match self.dispatch_to_pool(assignment, None) {
                Ok(worker) => {
                    self.next_job += 1;
                    let now = Instant::now();
                    let at = self.stamp();
                    let eta = at + SimDuration::from_micros(self.cfg.deadline.as_micros() as u64);
                    let alive = self.log(
                        at,
                        RunEvent::JobDispatched {
                            job,
                            task,
                            node: worker,
                            eta,
                        },
                    );
                    if !alive {
                        return;
                    }
                    self.report.total_jobs += 1;
                    let state = self.tasks.get_mut(&task).expect("checked above");
                    if state.first_dispatch.is_none() {
                        state.first_dispatch = Some(at);
                    }
                    state.live_jobs.push(job);
                    self.jobs.insert(
                        job,
                        JobInfo {
                            task,
                            worker,
                            replica,
                            epoch,
                            dispatched_at: at,
                        },
                    );
                    self.deadlines
                        .push(Reverse((now + self.cfg.deadline, job, epoch)));
                    self.arm_hedge(job, epoch, now);
                }
                Err(assignment) => {
                    self.pending
                        .push_front((assignment.task, assignment.replica));
                    return;
                }
            }
        }
    }

    /// Launches hedge twins for armed checks whose origin job is still
    /// outstanding. The twin re-runs the *same* `(task, replica)` under
    /// the same epoch — its fault draw, and hence its vote, is identical
    /// to the origin's — on a different worker when one is available.
    /// Twins bypass the wave/job accounting entirely: their launch event
    /// replaces `JobDispatched`, and every terminal journal event of the
    /// pair carries the origin's job id, so WAL recovery replays the pair
    /// as one logical replica.
    fn fire_hedges(&mut self, now: Instant) {
        let Some(policy) = self.hedge.as_ref().map(|t| t.policy()) else {
            return;
        };
        while let Some(&Reverse((fire_at, origin, epoch))) = self.hedge_checks.peek() {
            if fire_at > now || self.crashed {
                break;
            }
            self.hedge_checks.pop();
            // Double-fire guards: the origin must still be outstanding
            // under the armed epoch (a timeout reissue or audit void
            // removed it or bumped the epoch), unhedged, and within the
            // task's per-epoch budget.
            let Some(info) = self.jobs.get(&origin) else {
                continue;
            };
            if info.epoch != epoch || self.hedge_pair.contains_key(&origin) {
                continue;
            }
            let (task, origin_worker, replica) = (info.task, info.worker, info.replica);
            let Some(state) = self.tasks.get(&task) else {
                continue;
            };
            if state.epoch != epoch || state.exec.hedges_launched() >= policy.max_per_task as usize
            {
                continue;
            }
            let twin = self.next_job;
            let assignment = JobAssignment {
                job: twin,
                task,
                replica,
                epoch,
                payload: state.payload.clone(),
            };
            // Best-effort: on Err (every inbox full) the hedge is skipped.
            if let Ok(worker) = self.dispatch_to_pool(assignment, Some(origin_worker)) {
                self.next_job += 1;
                let at = self.stamp();
                let alive = self.log(
                    at,
                    RunEvent::HedgeLaunched {
                        job: twin,
                        task,
                        origin,
                        epoch,
                    },
                );
                if !alive {
                    return;
                }
                self.report.hedges_launched += 1;
                let state = self.tasks.get_mut(&task).expect("checked above");
                state.exec.note_hedge();
                state.live_jobs.push(twin);
                self.jobs.insert(
                    twin,
                    JobInfo {
                        task,
                        worker,
                        replica,
                        epoch,
                        dispatched_at: at,
                    },
                );
                self.hedge_pair.insert(origin, twin);
                self.hedge_pair.insert(twin, origin);
                self.twin_origin.insert(twin, origin);
                self.deadlines
                    .push(Reverse((Instant::now() + self.cfg.deadline, twin, epoch)));
            }
        }
    }

    /// Logs a twin's terminal hedge event exactly once: `won` means its
    /// result supplied the replica's vote. Returns `log`'s aliveness.
    fn settle_twin(&mut self, twin: u32, task: u32, won: bool, at: SimTime) -> bool {
        let removed = self.twin_origin.remove(&twin);
        debug_assert!(removed.is_some(), "twin settled twice");
        let event = if won {
            RunEvent::HedgeWon { job: twin, task }
        } else {
            RunEvent::HedgeWasted { job: twin, task }
        };
        if !self.log(at, event) {
            return false;
        }
        if won {
            self.report.hedges_won += 1;
        } else {
            self.report.hedges_wasted += 1;
        }
        true
    }

    fn on_pool_event(&mut self, event: PoolEvent) {
        match event {
            PoolEvent::Result(result) => self.on_result(result),
            PoolEvent::Crash {
                worker,
                job,
                task,
                epoch,
            } => self.on_crash(worker, job, task, epoch),
        }
    }

    fn on_result(&mut self, result: JobResult) {
        let at = self.stamp();
        // The staleness filter: a reply counts only if the job is still
        // live *and* carries the epoch it was dispatched under. Late
        // replies after a timeout/verdict, and replies from a replica
        // superseded by a re-dispatch, are journaled as dropped — never
        // tallied, so no vote can be counted twice.
        let fresh = self
            .jobs
            .get(&result.job)
            .is_some_and(|info| info.epoch == result.epoch);
        if !fresh {
            let alive = self.log(
                at,
                RunEvent::StaleReplyDropped {
                    job: result.job,
                    task: result.task,
                    epoch: result.epoch,
                },
            );
            if alive {
                self.report.stale_replies += 1;
            }
            return;
        }
        let info = self.jobs.remove(&result.job).expect("fresh job is mapped");
        let task = info.task;
        // Hedge-pair dissolution happens up front: whichever member
        // resolves first dissolves the pair, and the terminal journal
        // event below carries the ORIGIN's job id, so WAL recovery
        // replays the pair as one logical replica.
        let partner = self.hedge_pair.remove(&result.job);
        if let Some(p) = partner {
            self.hedge_pair.remove(&p);
        }
        let is_twin = self.twin_origin.contains_key(&result.job);
        let origin_id = self
            .twin_origin
            .get(&result.job)
            .copied()
            .unwrap_or(result.job);
        // A genuine resolution feeds the straggler estimator.
        if let Some(trigger) = self.hedge.as_mut() {
            trigger.observe(at.since(info.dispatched_at).as_units());
        }
        // Cancel the losing partner: its worker keeps computing, but the
        // job leaves the map, so its eventual reply drops as stale.
        if let Some(p) = partner.filter(|p| self.jobs.contains_key(p)) {
            self.jobs.remove(&p);
            if let Some(state) = self.tasks.get_mut(&task) {
                state.live_jobs.retain(|&j| j != p);
            }
            if !is_twin && !self.settle_twin(p, task, false, at) {
                return;
            }
        }
        let alive = self.log(
            at,
            RunEvent::JobReturned {
                job: origin_id,
                task,
                node: result.worker,
                value: result.vote,
            },
        );
        if !alive {
            return;
        }
        if is_twin && !self.settle_twin(result.job, task, true, at) {
            return;
        }
        let Some(state) = self.tasks.get_mut(&task) else {
            return;
        };
        state.live_jobs.retain(|&j| j != result.job);
        state.answers[usize::from(result.vote)] = Some(result.answer);
        state.exec.record(result.vote);
        state.returns.push((origin_id, result.worker, result.vote));
        // A result from a probationary node (fresh out of quarantine)
        // burns one probation slot and forces an audit of this task's
        // verdict, whatever the spot draw says.
        if self.cfg.audit.is_enabled() {
            if let Some(d) = self.discipline.get_mut(result.worker as usize) {
                if d.consume_probation() {
                    state.must_audit = true;
                }
            }
        }
        let (leader_count, runner_up) = state.exec.leader_counts();
        let boundary = state.exec.wave_boundary();
        let wave = state.exec.waves() as u32;
        let alive = self.log(
            at,
            RunEvent::VoteTallied {
                task,
                value: result.vote,
                leader_count: leader_count as u32,
                runner_up: runner_up as u32,
            },
        );
        if !alive {
            return;
        }
        if boundary && !self.log(at, RunEvent::WaveClosed { task, wave }) {
            return;
        }
        self.advance(task, at);
    }

    /// Handles a caught worker panic: journal the crash and the (already
    /// completed) in-place restart, charge node strikes and the task's
    /// poison counter, then either poison the task or abandon the dead
    /// replica and reissue.
    fn on_crash(&mut self, worker: u32, job: u32, task: u32, epoch: u32) {
        let at = self.stamp();
        let fresh = self.jobs.get(&job).is_some_and(|info| info.epoch == epoch);
        if !fresh {
            // A detached pre-respawn thread crashed on a superseded job:
            // stale, like any other late reply. (The pool slot that crash
            // belonged to was already replaced.)
            let alive = self.log(at, RunEvent::StaleReplyDropped { job, task, epoch });
            if alive {
                self.report.stale_replies += 1;
            }
            return;
        }
        // Pair dissolution first: the pair's terminal event carries the
        // origin's job id.
        let partner = self.hedge_pair.remove(&job);
        if let Some(p) = partner {
            self.hedge_pair.remove(&p);
        }
        let is_twin = self.twin_origin.contains_key(&job);
        let origin_id = self.twin_origin.get(&job).copied().unwrap_or(job);
        if partner.is_some_and(|p| self.jobs.contains_key(&p)) {
            // Suppressed crash: the hedge partner is still flying and will
            // supply the pair's single terminal event, so no
            // `WorkerCrashed` is journaled — recovery strikes, poisons,
            // and abandons only on that event, and a lapse the live run
            // absorbed must not do any of those on replay. The in-place
            // restart is real, though: log it.
            self.jobs.remove(&job);
            if let Some(state) = self.tasks.get_mut(&task) {
                state.live_jobs.retain(|&j| j != job);
            }
            self.incarnations[worker as usize] += 1;
            let incarnation = self.incarnations[worker as usize];
            if !self.log(
                at,
                RunEvent::WorkerRestarted {
                    node: worker,
                    incarnation,
                },
            ) {
                return;
            }
            self.report.worker_restarts += 1;
            if is_twin {
                let _ = self.settle_twin(job, task, false, at);
            }
            return;
        }
        if is_twin && !self.settle_twin(job, task, false, at) {
            return;
        }
        if !self.log(
            at,
            RunEvent::WorkerCrashed {
                node: worker,
                job: origin_id,
                task,
            },
        ) {
            return;
        }
        self.report.worker_crashes += 1;
        self.incarnations[worker as usize] += 1;
        let incarnation = self.incarnations[worker as usize];
        if !self.log(
            at,
            RunEvent::WorkerRestarted {
                node: worker,
                incarnation,
            },
        ) {
            return;
        }
        self.report.worker_restarts += 1;
        self.strike(worker, at);
        if self.crashed {
            return;
        }
        self.jobs.remove(&job);
        let Some(state) = self.tasks.get_mut(&task) else {
            return;
        };
        state.live_jobs.retain(|&j| j != job);
        let poisoned = match self.cfg.poison {
            Some(policy) => state.poison.record_crash(&policy),
            None => {
                let never = PoisonPolicy {
                    crash_limit: u32::MAX,
                };
                state.poison.record_crash(&never)
            }
        };
        if poisoned {
            self.finalize(task, Outcome::Poisoned, at);
            return;
        }
        // The replica died without a vote: abandon it and let the
        // strategy reopen a wave for a fresh replica (a fresh fault draw —
        // re-running the same replica would crash identically forever).
        let state = self.tasks.get_mut(&task).expect("task is live");
        state.exec.abandon(1);
        let boundary = state.exec.wave_boundary();
        let wave = state.exec.waves() as u32;
        if boundary && !self.log(at, RunEvent::WaveClosed { task, wave }) {
            return;
        }
        self.advance(task, at);
    }

    /// Respawns workers stuck inside one `execute` call past
    /// [`RuntimeConfig::hang_after`], bumping the epoch of every task with
    /// jobs lost on that worker and re-arming them.
    fn supervise_hangs(&mut self) {
        let Some(limit) = self.cfg.hang_after else {
            return;
        };
        for worker in self.pool.node_ids() {
            if self.pool.busy_for(worker).is_some_and(|busy| busy > limit) {
                self.respawn_worker(worker);
                if self.crashed {
                    return;
                }
            }
        }
    }

    fn respawn_worker(&mut self, worker: u32) {
        let at = self.stamp();
        self.incarnations[worker as usize] += 1;
        let incarnation = self.incarnations[worker as usize];
        if !self.log(
            at,
            RunEvent::WorkerRestarted {
                node: worker,
                incarnation,
            },
        ) {
            return;
        }
        self.report.worker_restarts += 1;
        self.pool.respawn(worker);
        // Everything in flight on that worker — the wedged job plus its
        // queued inbox — died with it. Bump each affected task's epoch
        // (so the detached thread's eventual reply is rejected) and
        // re-dispatch the same jobs under the new epoch, without new
        // journal records.
        let lost: Vec<(u32, u32, u32)> = self
            .jobs
            .iter()
            .filter(|(_, info)| info.worker == worker)
            .map(|(&job, info)| (job, info.task, info.replica))
            .collect();
        let mut bumped: HashSet<u32> = HashSet::new();
        for &(_, task, _) in &lost {
            if bumped.insert(task) {
                let Some(state) = self.tasks.get_mut(&task) else {
                    continue;
                };
                let epoch = state.epoch + 1;
                if !self.log(at, RunEvent::EpochAdvanced { task, epoch }) {
                    return;
                }
                let state = self.tasks.get_mut(&task).expect("task is live");
                state.epoch = epoch;
            }
        }
        let mut lost = lost;
        lost.sort_unstable();
        for (job, task, replica) in lost {
            if self.jobs.remove(&job).is_none() {
                continue; // canceled while handling an earlier pair member
            }
            if let Some(p) = self.hedge_pair.remove(&job) {
                self.hedge_pair.remove(&p);
                if self.twin_origin.contains_key(&job) {
                    // A hedge twin died with its worker: settle it and let
                    // the origin keep flying — recovery never re-arms
                    // twins, so the live run must not either.
                    if let Some(state) = self.tasks.get_mut(&task) {
                        state.live_jobs.retain(|&j| j != job);
                    }
                    if !self.settle_twin(job, task, false, at) {
                        return;
                    }
                    continue;
                }
                // A hedged origin is re-armed below; its twin is canceled
                // (its late reply drops as stale) so the re-armed origin
                // stays the pair's sole voter.
                if self.jobs.remove(&p).is_some() {
                    if let Some(state) = self.tasks.get_mut(&task) {
                        state.live_jobs.retain(|&j| j != p);
                    }
                    if !self.settle_twin(p, task, false, at) {
                        return;
                    }
                }
            }
            let Some(state) = self.tasks.get(&task) else {
                continue;
            };
            self.rearm.push_back((job, task, replica, state.epoch));
        }
    }

    /// Charges one node-discipline strike, quarantining or blacklisting
    /// per policy — but never sidelining the last enabled worker, which
    /// would livelock the pool.
    fn strike(&mut self, worker: u32, at: SimTime) {
        let Some(policy) = self.cfg.discipline else {
            return;
        };
        let slot = worker as usize;
        if slot >= self.discipline.len() || self.blacklisted[slot] {
            return;
        }
        let window = self.cfg.strike_window.as_micros() as u64;
        let action = self.discipline[slot].strike_at(at.as_micros(), window, &policy);
        self.enact(worker, action, at, policy);
    }

    /// Charges [`AuditPolicy::strike_weight`] strikes in one blow — an
    /// audit catching a lie is direct evidence, not a noisy signal like a
    /// timeout, so it can quarantine immediately.
    fn strike_weighted(&mut self, worker: u32, at: SimTime) {
        let Some(policy) = self.cfg.discipline else {
            return;
        };
        let slot = worker as usize;
        if slot >= self.discipline.len() || self.blacklisted[slot] {
            return;
        }
        let window = self.cfg.strike_window.as_micros() as u64;
        let weight = self.cfg.audit.strike_weight.max(1);
        let action =
            self.discipline[slot].strike_weighted_at(weight, at.as_micros(), window, &policy);
        self.enact(worker, action, at, policy);
    }

    /// Enacts a discipline action, never sidelining the last enabled
    /// worker (which would livelock the pool).
    fn enact(
        &mut self,
        worker: u32,
        action: DisciplineAction,
        at: SimTime,
        policy: QuarantinePolicy,
    ) {
        let slot = worker as usize;
        if action == DisciplineAction::None {
            return;
        }
        if self.pool.enabled_count() <= 1 || !self.pool.is_enabled(worker) {
            return; // livelock guard / already sidelined
        }
        match action {
            DisciplineAction::None => unreachable!(),
            DisciplineAction::Quarantine => {
                if !self.log(at, RunEvent::NodeQuarantined { node: worker }) {
                    return;
                }
                self.pool.set_enabled(worker, false);
                self.quarantined_until[slot] =
                    Some(at + SimDuration::from_units(policy.quarantine_units));
            }
            DisciplineAction::Blacklist => {
                let alive = self.log(
                    at,
                    RunEvent::NodeDeparted {
                        node: worker,
                        reason: DepartureReason::Blacklist,
                    },
                );
                if !alive {
                    return;
                }
                self.pool.set_enabled(worker, false);
                self.blacklisted[slot] = true;
                self.quarantined_until[slot] = None;
            }
        }
    }

    /// Re-enables quarantined workers whose sentence has elapsed.
    fn release_quarantines(&mut self) {
        if self.cfg.discipline.is_none() {
            return;
        }
        let now = self.stamp();
        for worker in self.pool.node_ids() {
            let slot = worker as usize;
            if let Some(until) = self.quarantined_until[slot] {
                if now >= until {
                    if !self.log(now, RunEvent::NodeReleased { node: worker }) {
                        return;
                    }
                    self.quarantined_until[slot] = None;
                    self.pool.set_enabled(worker, true);
                    // Probationary re-admission: the node's next results
                    // force audits until it has proven itself again.
                    if self.cfg.audit.is_enabled() {
                        self.discipline[slot].begin_probation(self.cfg.audit.probation_audits);
                    }
                }
            }
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        while let Some(&Reverse((deadline, job, epoch))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            // Resolved jobs leave stale heap entries, and re-dispatched
            // jobs carry a newer epoch than their old entry; skip both.
            let still_armed = self.jobs.get(&job).is_some_and(|info| info.epoch == epoch);
            if !still_armed {
                continue;
            }
            let info = self.jobs.remove(&job).expect("armed job is mapped");
            let task = info.task;
            let at = self.stamp();
            // Pair dissolution first: a lapse with the hedge partner still
            // flying is absorbed silently — no journal event, no strike,
            // no abandon — because the partner will supply the pair's
            // single terminal event under the origin's id.
            let partner = self.hedge_pair.remove(&job);
            if let Some(p) = partner {
                self.hedge_pair.remove(&p);
            }
            let is_twin = self.twin_origin.contains_key(&job);
            let origin_id = self.twin_origin.get(&job).copied().unwrap_or(job);
            if partner.is_some_and(|p| self.jobs.contains_key(&p)) {
                if let Some(state) = self.tasks.get_mut(&task) {
                    state.live_jobs.retain(|&j| j != job);
                }
                if is_twin && !self.settle_twin(job, task, false, at) {
                    return;
                }
                continue;
            }
            // A solo lapse is a genuine deadline miss: it feeds the
            // estimator and takes the normal timeout path.
            if let Some(trigger) = self.hedge.as_mut() {
                trigger.observe(at.since(info.dispatched_at).as_units());
            }
            if is_twin && !self.settle_twin(job, task, false, at) {
                return;
            }
            if !self.log(
                at,
                RunEvent::JobTimedOut {
                    job: origin_id,
                    task,
                    node: info.worker,
                },
            ) {
                return;
            }
            self.report.timeouts += 1;
            self.strike(info.worker, at);
            if self.crashed {
                return;
            }
            let Some(state) = self.tasks.get_mut(&task) else {
                continue;
            };
            state.live_jobs.retain(|&j| j != job);
            state.timeouts += 1;
            let attempt = state.timeouts;
            state.exec.abandon(1);
            let boundary = state.exec.wave_boundary();
            let wave = state.exec.waves() as u32;
            // Reissue semantics: the abandoned replica is replaced by a
            // fresh one when the strategy reopens the wave below.
            if !self.log(at, RunEvent::JobRetried { task, attempt }) {
                return;
            }
            self.report.retries += 1;
            if boundary && !self.log(at, RunEvent::WaveClosed { task, wave }) {
                return;
            }
            self.advance(task, at);
        }
    }

    /// Runs one audit group on `task` at verdict time: log the schedule,
    /// recompute the payload locally, and compare every recorded return
    /// against the honest value. Returns `true` when the verdict stands;
    /// `false` when the caller must not finalize — the coordinator died
    /// mid-group, or the verdict was voided and the task restarted.
    fn run_audit(&mut self, task: u32, value: bool, at: SimTime) -> bool {
        if !self.log(at, RunEvent::AuditScheduled { task }) {
            return false;
        }
        self.report.audits += 1;
        // The local recomputation costs one job-equivalent of coordinator
        // compute (counted in `report.audits`, and in `total_cost()` for
        // matched-cost comparisons). A recorded vote is the server-checked
        // claim "my answer equals the honest value", so each return's
        // comparison against the recomputation is exactly its vote bit —
        // which keeps audit outcomes a pure function of the journaled
        // stream, replayable after a crash.
        let state = self.tasks.get(&task).expect("auditing a live task");
        let _honest = state.payload.execute();
        let liars: Vec<(u32, u32)> = state
            .returns
            .iter()
            .filter(|&&(_, _, vote)| !vote)
            .map(|&(job, node, _)| (job, node))
            .collect();
        if liars.is_empty() {
            if !self.log(at, RunEvent::AuditPassed { task }) {
                return false;
            }
            let state = self.tasks.get_mut(&task).expect("task is live");
            state.must_audit = false;
            return true;
        }
        for &(_, node) in &liars {
            if !self.log(at, RunEvent::AuditFailed { task, node }) {
                return false;
            }
            self.report.audit_failures += 1;
            self.escalated = true;
            self.strike_weighted(node, at);
            if self.crashed {
                return false;
            }
        }
        // Retaliation: the caught liars' other open work can no longer be
        // trusted — re-tally every open task they touched from scratch.
        let caught: HashSet<u32> = liars.iter().map(|&(_, node)| node).collect();
        let mut touched: Vec<u32> = self
            .tasks
            .iter()
            .filter(|(&t, s)| t != task && s.returns.iter().any(|&(_, n, _)| caught.contains(&n)))
            .map(|(&t, _)| t)
            .collect();
        touched.sort_unstable();
        for t in touched {
            if !self.log(at, RunEvent::TaskRetallied { task: t }) {
                return false;
            }
            self.report.tasks_retallied += 1;
            self.purge_and_reset(t, at);
            self.advance(t, at);
            if self.crashed {
                return false;
            }
        }
        if value {
            // Liars voted, but the tally's winner matches the
            // recomputation: the verdict stands. (The task leaves `tasks`
            // at finalize, so its `must_audit` flag dies with it.)
            return true;
        }
        // The coalition won the tally: the would-be verdict contradicts
        // the recomputation. Void it before acceptance and re-run the
        // task — no `VerdictReached` is ever logged for this attempt.
        if !self.log(at, RunEvent::VerdictVoided { task }) {
            return false;
        }
        self.report.verdicts_voided += 1;
        self.purge_and_reset(task, at);
        self.advance(task, at);
        false
    }

    /// Voids a task's accumulated evidence: drops its in-flight jobs
    /// (their late replies become stale via the job-map freshness check),
    /// resets the strategy state to wave 1 with a fresh job budget, and
    /// forgets recorded returns. Replica ordinals and epochs stay monotone
    /// so fault draws never repeat across attempts.
    fn purge_and_reset(&mut self, task: u32, at: SimTime) {
        let live: Vec<u32> = match self.tasks.get_mut(&task) {
            Some(state) => state.live_jobs.drain(..).collect(),
            None => return,
        };
        for job in live {
            self.jobs.remove(&job);
            if let Some(p) = self.hedge_pair.remove(&job) {
                self.hedge_pair.remove(&p);
            }
            if self.twin_origin.contains_key(&job) && !self.settle_twin(job, task, false, at) {
                return;
            }
        }
        let state = self.tasks.get_mut(&task).expect("checked above");
        state.exec.reset();
        state.returns.clear();
        state.answers = [None, None];
        state.must_audit = false;
        self.pending.retain(|&(t, _)| t != task);
        self.rearm.retain(|&(_, t, _, _)| t != task);
    }

    fn finalize(&mut self, task: u32, outcome: Outcome, at: SimTime) {
        // Verdicts pass through the audit layer before they are accepted:
        // a spot-checked (or probation-flagged) task is recomputed
        // locally, and a tainted verdict is voided instead of delivered.
        if let Outcome::Verdict(value) = outcome {
            if self.cfg.audit.is_enabled() {
                let flagged = self.tasks.get(&task).is_some_and(|s| s.must_audit);
                let selected = flagged
                    || self
                        .cfg
                        .audit
                        .selects(self.cfg.audit_seed, u64::from(task), self.escalated);
                if selected && !self.run_audit(task, value, at) {
                    return;
                }
            }
        }
        // The decision is WAL-durable before any side effect (report
        // update, verdict send) — the exactly-once anchor: a recovered
        // coordinator treats a logged decision as delivered and never
        // re-runs or re-sends it.
        let event = match outcome {
            Outcome::Verdict(value) => RunEvent::VerdictReached {
                task,
                value,
                degraded: false,
                confidence: 1.0,
            },
            Outcome::Capped => RunEvent::TaskCapped { task },
            Outcome::Poisoned => RunEvent::TaskPoisoned {
                task,
                crashes: self.tasks[&task].poison.crashes(),
            },
        };
        let mut alive = self.log(at, event);
        if alive {
            // The decision must be fsync-durable before any side effect,
            // whatever the group-commit batch says. A failed commit kills
            // the coordinator, and the decision must then not be
            // delivered — recovery re-runs the task from the prefix.
            self.commit_wal();
            alive = !self.crashed;
        }
        let state = self.tasks.remove(&task).expect("finalizing a live task");
        for &job in &state.live_jobs {
            self.jobs.remove(&job);
            if let Some(p) = self.hedge_pair.remove(&job) {
                self.hedge_pair.remove(&p);
            }
            if alive && self.twin_origin.contains_key(&job) {
                let _ = self.settle_twin(job, task, false, at);
            }
        }
        self.active.store(self.tasks.len(), Ordering::Relaxed);
        if !alive {
            return;
        }
        self.decided.insert(task);
        let jobs = state.exec.jobs_deployed();
        let latency = match state.first_dispatch {
            Some(started) => at.since(started).as_units(),
            None => 0.0,
        };
        match outcome {
            Outcome::Verdict(value) => {
                self.report.tasks_completed += 1;
                if value {
                    self.report.tasks_correct += 1;
                }
                self.report.jobs_per_task.record(jobs as f64);
                self.report.waves_per_task.record(state.exec.waves() as f64);
                self.report.response_time.record(latency);
                let _ = state.verdict_tx.send(TaskVerdict {
                    task,
                    vote: Some(value),
                    answer: state.answers[usize::from(value)],
                    poisoned: false,
                    latency_units: latency,
                    jobs: jobs as u32,
                });
            }
            Outcome::Capped => {
                self.report.tasks_capped += 1;
                let _ = state.verdict_tx.send(TaskVerdict {
                    task,
                    vote: None,
                    answer: None,
                    poisoned: false,
                    latency_units: latency,
                    jobs: jobs as u32,
                });
            }
            Outcome::Poisoned => {
                self.report.tasks_poisoned += 1;
                let _ = state.verdict_tx.send(TaskVerdict {
                    task,
                    vote: None,
                    answer: None,
                    poisoned: true,
                    latency_units: latency,
                    jobs: jobs as u32,
                });
            }
        }
    }
}
