//! Job payloads: the real work a replica executes.
//!
//! Every replica of a task runs the same payload and votes on its result;
//! the redundancy layer never inspects the work itself, only the votes.
//! Two payload kinds cover the paper's deployment workload and load
//! testing:
//!
//! * [`Payload::Sat`] — evaluate one assignment block of a 3-SAT formula,
//!   the canonical BOINC job of §4.1 ("does this block contain a
//!   satisfying assignment?");
//! * [`Payload::Synthetic`] — configurable busywork with a fixed honest
//!   answer, for benchmarks that need controllable service times.

use std::sync::Arc;
use std::time::Duration;

use smartred_sat::{AssignmentBlock, CnfFormula};

/// The work one task's replicas execute.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Evaluate one assignment block of a 3-SAT formula. The honest answer
    /// is whether the block contains a satisfying assignment.
    Sat {
        /// The formula, shared across every block of the decomposition.
        formula: Arc<CnfFormula>,
        /// The block of assignments this task tests.
        block: AssignmentBlock,
    },
    /// Synthetic busywork: sleep for `work`, then report `answer`.
    Synthetic {
        /// The honest answer.
        answer: bool,
        /// Wall-clock service time per execution.
        work: Duration,
    },
}

impl Payload {
    /// Executes the payload honestly and returns the honest answer.
    pub fn execute(&self) -> bool {
        match self {
            Payload::Sat { formula, block } => block.contains_satisfying(formula),
            Payload::Synthetic { answer, work } => {
                if !work.is_zero() {
                    std::thread::sleep(*work);
                }
                *answer
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smartred_sat::{decompose, random_3sat, ThreeSatConfig};

    #[test]
    fn sat_payload_executes_block_honestly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let formula = Arc::new(random_3sat(
            ThreeSatConfig {
                num_vars: 8,
                clause_ratio: 4.26,
            },
            &mut rng,
        ));
        let blocks = decompose(formula.num_vars(), 4);
        for block in blocks {
            let payload = Payload::Sat {
                formula: formula.clone(),
                block,
            };
            assert_eq!(payload.execute(), block.contains_satisfying(&formula));
        }
    }

    #[test]
    fn synthetic_payload_reports_its_answer() {
        let p = Payload::Synthetic {
            answer: false,
            work: Duration::ZERO,
        };
        assert!(!p.execute());
    }
}
