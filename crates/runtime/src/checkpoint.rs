//! Coordinator checkpoints: bounded-recovery snapshots paired with WAL
//! compaction.
//!
//! Without checkpoints, recovery time grows linearly with uptime — the
//! whole WAL replays on every restart. A checkpoint bounds that: at a
//! quiescent point (no open tasks, no in-flight jobs, nothing parked),
//! the coordinator serializes everything the replay would have rebuilt —
//! the decided-task set, node discipline, incarnations, quarantines,
//! blacklists, the job-id cursor, and the full live [`RuntimeReport`]
//! including its bit-exact Welford summaries — into a snapshot file next
//! to the WAL, truncates the log, and seals the fresh segment with a
//! [`RunEvent::CheckpointTaken`] record carrying the snapshot's digest.
//! Recovery then loads the snapshot and replays only the suffix.
//!
//! ## Crash windows
//!
//! The snapshot is stored atomically (write to a temp file, fsync,
//! rename), and the three-step sequence — store snapshot, truncate WAL,
//! log `CheckpointTaken` — is safe to die anywhere inside:
//!
//! * crash **before the rename**: the old WAL is intact and starts at
//!   seq 0 — full replay, the half-written temp file is ignored;
//! * crash **between rename and truncate**: the WAL still starts at
//!   seq 0 — full replay, the (valid, but redundant) snapshot is ignored;
//! * crash **between truncate and the seal record**: the WAL is empty but
//!   the snapshot exists — recovery restores from the snapshot alone and
//!   re-seals the segment;
//! * any later crash: the WAL begins with `CheckpointTaken` whose
//!   `events`/`digest` must match the snapshot, else the pair is
//!   reported as corruption rather than silently trusted.
//!
//! The snapshot format is deterministic line-based text with a trailing
//! FNV-1a checksum, so a damaged snapshot is detected at load, never
//! deserialized into wrong state.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use smartred_core::resilience::NodeDiscipline;
use smartred_desim::journal::fnv1a_64;
use smartred_desim::time::SimTime;
use smartred_stats::Summary;

use crate::report::RuntimeReport;

/// The snapshot path paired with a WAL segment: same stem, `.ckpt`
/// extension (`wal.jsonl` → `wal.ckpt`).
pub fn checkpoint_path(wal: &Path) -> PathBuf {
    wal.with_extension("ckpt")
}

/// Everything a suffix replay needs from the compacted WAL prefix.
///
/// Checkpoints are taken only at quiescence, so there is no open-task
/// state to capture: every task ever admitted is decided, every job
/// resolved. What remains is the cross-task bookkeeping recovery would
/// otherwise fold out of the full log.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointState {
    /// Events compacted out of the WAL; the seal record's `seq` equals
    /// this, which is how recovery pairs segment and snapshot.
    pub events: u64,
    /// Stamp of the checkpoint (the recovered clock base when the
    /// suffix is empty).
    pub last_at: SimTime,
    /// The next fresh job id.
    pub next_job: u32,
    /// Decided task ids, sorted (never re-run or re-delivered).
    pub decided: Vec<u32>,
    /// Permanently blacklisted nodes, sorted.
    pub blacklisted: Vec<u32>,
    /// Per-node restart incarnations as `(node, count)`, sorted.
    pub incarnations: Vec<(u32, u32)>,
    /// Active quarantines as `(node, release stamp micros)`, sorted.
    pub quarantines: Vec<(u32, u64)>,
    /// Per-node strike state as `(node, parts)` via
    /// [`NodeDiscipline::to_parts`], sorted.
    pub discipline: Vec<(u32, (u32, u32, u64, u32))>,
    /// The live report at the checkpoint, bit-exact: counters plus the
    /// Welford summaries, so `snapshot + suffix fold == full fold`.
    pub report: RuntimeReport,
}

fn push_summary(out: &mut String, name: &str, s: &Summary) {
    let (count, mean, m2, min, max, total) = s.to_parts();
    out.push_str(&format!(
        "summary {name} {count} {} {} {} {} {}\n",
        mean.to_bits(),
        m2.to_bits(),
        min.to_bits(),
        max.to_bits(),
        total.to_bits()
    ));
}

fn parse_summary(rest: &str, name: &str) -> Result<Summary, String> {
    let mut it = rest.split(' ');
    if it.next() != Some(name) {
        return Err(format!("expected summary {name}"));
    }
    let mut next = |what: &str| -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("summary {name}: missing {what}"))?
            .parse::<u64>()
            .map_err(|_| format!("summary {name}: bad {what}"))
    };
    let count = next("count")?;
    let mean = f64::from_bits(next("mean")?);
    let m2 = f64::from_bits(next("m2")?);
    let min = f64::from_bits(next("min")?);
    let max = f64::from_bits(next("max")?);
    let total = f64::from_bits(next("total")?);
    Ok(Summary::from_parts(count, mean, m2, min, max, total))
}

fn parse_ints<T: std::str::FromStr>(rest: &str) -> Result<Vec<T>, String> {
    rest.split(' ')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<T>().map_err(|_| format!("bad integer {t:?}")))
        .collect()
}

impl CheckpointState {
    /// The checksummed body: every field on its own line, fixed order,
    /// integers in decimal, floats as IEEE-754 bit patterns (so ±∞
    /// sentinels of empty summaries survive exactly).
    fn body(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("smartred-checkpoint v1\n");
        out.push_str(&format!("events {}\n", self.events));
        out.push_str(&format!("last_at {}\n", self.last_at.as_micros()));
        out.push_str(&format!("next_job {}\n", self.next_job));
        let join = |ids: &[u32]| ids.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
        out.push_str(&format!("decided {}\n", join(&self.decided)));
        out.push_str(&format!("blacklisted {}\n", join(&self.blacklisted)));
        for &(node, inc) in &self.incarnations {
            out.push_str(&format!("incarnation {node} {inc}\n"));
        }
        for &(node, until) in &self.quarantines {
            out.push_str(&format!("quarantine {node} {until}\n"));
        }
        for &(node, (s, q, last, p)) in &self.discipline {
            out.push_str(&format!("discipline {node} {s} {q} {last} {p}\n"));
        }
        let r = &self.report;
        out.push_str(&format!(
            "report {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            r.tasks_completed,
            r.tasks_correct,
            r.tasks_capped,
            r.total_jobs,
            r.timeouts,
            r.retries,
            r.worker_crashes,
            r.worker_restarts,
            r.stale_replies,
            r.tasks_poisoned,
            r.audits,
            r.audit_failures,
            r.verdicts_voided,
            r.tasks_retallied,
            r.hedges_launched,
            r.hedges_won,
            r.hedges_wasted
        ));
        push_summary(&mut out, "jobs_per_task", &r.jobs_per_task);
        push_summary(&mut out, "waves_per_task", &r.waves_per_task);
        push_summary(&mut out, "response_time", &r.response_time);
        out.push_str(&format!("makespan {}\n", r.makespan_units.to_bits()));
        out
    }

    /// The snapshot digest recorded in the WAL's
    /// [`RunEvent::CheckpointTaken`] seal — FNV-1a over the body, the
    /// same value as the file's own trailing checksum line.
    ///
    /// [`RunEvent::CheckpointTaken`]: smartred_desim::journal::RunEvent::CheckpointTaken
    pub fn digest(&self) -> u64 {
        fnv1a_64(self.body().as_bytes())
    }

    /// Atomically writes the snapshot: temp file in the same directory,
    /// contents + checksum line, fsync, rename over the target. A crash
    /// at any point leaves either the old snapshot or the new one, never
    /// a torn mix.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        let body = self.body();
        let digest = fnv1a_64(body.as_bytes());
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.write_all(format!("crc {digest:016x}\n").as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)
    }

    /// Loads and verifies a snapshot. Any damage — a missing or wrong
    /// checksum line, an unknown header, a malformed field — is an error
    /// naming the problem; a snapshot never deserializes partially.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read snapshot: {e}"))?;
        let Some(crc_start) = text.trim_end().rfind('\n') else {
            return Err("snapshot too short".into());
        };
        let body = &text[..crc_start + 1];
        let crc_line = text[crc_start + 1..].trim_end();
        let stated = crc_line
            .strip_prefix("crc ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| "missing checksum line".to_string())?;
        let actual = fnv1a_64(body.as_bytes());
        if stated != actual {
            return Err(format!(
                "snapshot checksum mismatch: file states {stated:016x} but \
                 content hashes to {actual:016x}"
            ));
        }

        let mut lines = body.lines();
        if lines.next() != Some("smartred-checkpoint v1") {
            return Err("unknown snapshot header".into());
        }
        let mut events = None;
        let mut last_at = None;
        let mut next_job = None;
        let mut decided = Vec::new();
        let mut blacklisted = Vec::new();
        let mut incarnations = Vec::new();
        let mut quarantines = Vec::new();
        let mut discipline = Vec::new();
        let mut report = RuntimeReport::new();
        let mut saw_report = false;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "events" => events = rest.parse::<u64>().ok(),
                "last_at" => last_at = rest.parse::<u64>().ok().map(SimTime::from_micros),
                "next_job" => next_job = rest.parse::<u32>().ok(),
                "decided" => decided = parse_ints(rest)?,
                "blacklisted" => blacklisted = parse_ints(rest)?,
                "incarnation" => {
                    let v: Vec<u32> = parse_ints(rest)?;
                    let [node, inc] = v[..] else {
                        return Err(format!("bad incarnation line {line:?}"));
                    };
                    incarnations.push((node, inc));
                }
                "quarantine" => {
                    let v: Vec<u64> = parse_ints(rest)?;
                    let [node, until] = v[..] else {
                        return Err(format!("bad quarantine line {line:?}"));
                    };
                    quarantines.push((node as u32, until));
                }
                "discipline" => {
                    let v: Vec<u64> = parse_ints(rest)?;
                    let [node, s, q, last, p] = v[..] else {
                        return Err(format!("bad discipline line {line:?}"));
                    };
                    discipline.push((node as u32, (s as u32, q as u32, last, p as u32)));
                }
                "report" => {
                    let v: Vec<u64> = parse_ints(rest)?;
                    if v.len() != 17 {
                        return Err(format!("bad report line {line:?}"));
                    }
                    report.tasks_completed = v[0] as usize;
                    report.tasks_correct = v[1] as usize;
                    report.tasks_capped = v[2] as usize;
                    report.total_jobs = v[3];
                    report.timeouts = v[4];
                    report.retries = v[5];
                    report.worker_crashes = v[6];
                    report.worker_restarts = v[7];
                    report.stale_replies = v[8];
                    report.tasks_poisoned = v[9] as usize;
                    report.audits = v[10];
                    report.audit_failures = v[11];
                    report.verdicts_voided = v[12];
                    report.tasks_retallied = v[13];
                    report.hedges_launched = v[14];
                    report.hedges_won = v[15];
                    report.hedges_wasted = v[16];
                    saw_report = true;
                }
                "summary" => {
                    if let Ok(s) = parse_summary(rest, "jobs_per_task") {
                        report.jobs_per_task = s;
                    } else if let Ok(s) = parse_summary(rest, "waves_per_task") {
                        report.waves_per_task = s;
                    } else if let Ok(s) = parse_summary(rest, "response_time") {
                        report.response_time = s;
                    } else {
                        return Err(format!("unknown summary line {line:?}"));
                    }
                }
                "makespan" => {
                    report.makespan_units = f64::from_bits(
                        rest.parse::<u64>()
                            .map_err(|_| format!("bad makespan line {line:?}"))?,
                    );
                }
                _ => return Err(format!("unknown snapshot line {line:?}")),
            }
        }
        let (Some(events), Some(last_at), Some(next_job)) = (events, last_at, next_job) else {
            return Err("snapshot missing a required field".into());
        };
        if !saw_report {
            return Err("snapshot missing the report line".into());
        }
        Ok(Self {
            events,
            last_at,
            next_job,
            decided,
            blacklisted,
            incarnations,
            quarantines,
            discipline,
            report,
        })
    }

    /// The per-node discipline map the suffix replay starts from.
    pub fn discipline_map(&self) -> HashMap<u32, NodeDiscipline> {
        self.discipline
            .iter()
            .map(|&(node, (s, q, last, p))| (node, NodeDiscipline::from_parts(s, q, last, p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointState {
        let mut report = RuntimeReport::new();
        report.tasks_completed = 7;
        report.tasks_correct = 6;
        report.total_jobs = 41;
        report.jobs_per_task.record(5.0);
        report.jobs_per_task.record(7.5);
        report.response_time.record(0.125);
        report.makespan_units = 3.75;
        CheckpointState {
            events: 120,
            last_at: SimTime::from_micros(98_765),
            next_job: 44,
            decided: vec![0, 1, 2, 5, 9],
            blacklisted: vec![3],
            incarnations: vec![(2, 1), (3, 4)],
            quarantines: vec![(6, 1_234_567)],
            discipline: vec![(3, (2, 1, 55, 0)), (6, (1, 0, 77, 2))],
            report,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("smartred-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.ckpt");
        let state = sample();
        state.store(&path).unwrap();
        let loaded = CheckpointState::load(&path).unwrap();
        assert_eq!(loaded, state);
        assert_eq!(loaded.digest(), state.digest());
        // An empty report's ±∞ min/max sentinels survive too.
        let empty = CheckpointState {
            report: RuntimeReport::new(),
            ..state
        };
        empty.store(&path).unwrap();
        assert_eq!(CheckpointState::load(&path).unwrap(), empty);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshots_are_refused() {
        let dir = std::env::temp_dir().join(format!("smartred-ckpt-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.ckpt");
        let state = sample();
        state.store(&path).unwrap();
        let good = fs::read_to_string(&path).unwrap();
        // Flip one digit inside the body: checksum mismatch.
        let bad = good.replacen("events 120", "events 121", 1);
        fs::write(&path, &bad).unwrap();
        let err = CheckpointState::load(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // Drop the checksum line entirely.
        let clipped = good.rsplit_once("crc ").unwrap().0;
        fs::write(&path, clipped).unwrap();
        assert!(CheckpointState::load(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_path_sits_next_to_the_wal() {
        assert_eq!(
            checkpoint_path(Path::new("/tmp/x/wal-shard-3.jsonl")),
            Path::new("/tmp/x/wal-shard-3.ckpt")
        );
    }
}
