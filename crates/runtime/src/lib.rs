//! # smartred-runtime — live job serving under smart redundancy
//!
//! Everything else in this workspace runs in *simulated* time; this crate
//! is the real thing: a std-only, wall-clock job-serving runtime that
//! executes actual workloads (3-SAT assignment blocks, synthetic
//! busywork) on a pool of OS threads under the traditional, progressive,
//! and iterative redundancy strategies of `smartred-core`.
//!
//! ## Architecture
//!
//! * [`worker`] — the pool: per-worker bounded inboxes, a pluggable
//!   [`Worker`] trait, and [`FaultyWorker`], whose lies and hangs are a
//!   pure function of `(seed, task, replica)` via the counter-based RNG
//!   streams of `core::parallel`;
//! * [`coordinator`] — a single coordinator thread owning all redundancy
//!   state: it admits submissions (bounded queue, load shedding,
//!   [`SubmitOutcome`]), sizes waves with the shared
//!   `core::execution::step_wave` surface, tallies votes, enforces
//!   wall-clock deadlines with timeout→reissue semantics, and delivers
//!   [`TaskVerdict`]s;
//! * [`workload`] — the job payloads replicas execute;
//! * [`report`] — live metrics plus [`report_from_journal`], the exact
//!   replay cross-check;
//! * [`recovery`] — WAL replay: rebuilds full coordinator state from a
//!   journal prefix so [`Runtime::recover`] can resume a crashed run;
//! * [`checkpoint`] — checksummed coordinator snapshots taken at
//!   quiescence so recovery replays snapshot + WAL suffix instead of the
//!   whole history, and old WAL segments can be truncated;
//! * [`shard`] — the sharded multi-coordinator runtime: tasks hash by id
//!   to one of N coordinators (disjoint WAL segments and worker
//!   sub-pools) behind a router thread that owns admission control;
//!   per-shard journals merge deterministically and shard WALs recover
//!   in parallel.
//!
//! ## Crash recovery
//!
//! With [`RuntimeConfig::wal`] set, every journal event is durably
//! appended before the coordinator acts on it. If the coordinator process
//! dies, [`Runtime::recover`] replays the surviving WAL prefix (tolerating
//! a torn final record) and resumes: decided tasks are never re-run or
//! re-delivered, open tasks keep their exact vote tallies and replica
//! indices, and in-flight jobs are re-armed under a fresh epoch. Worker
//! threads are supervised at runtime — panics are caught and the worker
//! rebuilt, hung workers are respawned, late replies from superseded
//! dispatches are rejected by epoch, and payloads that repeatedly kill
//! workers are poisoned rather than re-issued forever. See DESIGN.md §9.
//!
//! ## Observability
//!
//! The coordinator emits the same typed
//! [`RunEvent`](smartred_desim::journal::RunEvent) stream as the
//! simulators, stamped with monotonic wall time (1 unit = 1 second), so
//! the `journal::assert` DSL, JSONL export, digests, and replay folding
//! all work unchanged against the live system.
//!
//! ## Determinism contract
//!
//! Given a seed: votes, verdicts, per-task costs, and per-task journal
//! *structure* are deterministic (fault draws are keyed by task and
//! replica, not by worker or schedule) **provided no job misses its
//! deadline spuriously**. Wall-clock timestamps, cross-task interleaving,
//! and therefore journal digests are *not* deterministic — see DESIGN.md
//! §"Live runtime vs simulators".
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//! use smartred_core::params::KVotes;
//! use smartred_core::strategy::Traditional;
//! use smartred_runtime::{
//!     FaultProfile, FaultyWorker, Payload, Runtime, RuntimeConfig, SubmitOutcome,
//! };
//!
//! let cfg = RuntimeConfig {
//!     workers: Some(2),
//!     ..RuntimeConfig::default()
//! };
//! let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3)?), |_| {
//!     Box::new(FaultyWorker::new(7, FaultProfile::default()))
//! });
//! let client = runtime.client();
//! let outcome = client.submit(Payload::Synthetic {
//!     answer: true,
//!     work: Duration::ZERO,
//! });
//! assert!(matches!(outcome, SubmitOutcome::Accepted { .. }));
//! let verdict = client.recv().expect("a verdict");
//! assert_eq!(verdict.vote, Some(true));
//! drop(client);
//! let run = runtime.finish();
//! assert_eq!(run.report.tasks_completed, 1);
//! # Ok::<(), smartred_core::error::ParamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod coordinator;
pub mod recovery;
pub mod report;
pub mod shard;
pub mod worker;
pub mod workload;

pub use checkpoint::checkpoint_path;
pub use coordinator::{
    AdmissionStats, Client, Runtime, RuntimeConfig, RuntimeRun, SubmitOutcome, TaskVerdict,
};
pub use recovery::{RecoveryError, RecoveryReport};
pub use report::{report_from_journal, RuntimeReport};
pub use shard::{ShardedClient, ShardedConfig, ShardedRun, ShardedRuntime};
pub use worker::{CartelWorker, FaultProfile, FaultyWorker, JobAssignment, JobResult, Worker};
pub use workload::Payload;
