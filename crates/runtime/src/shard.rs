//! The sharded multi-coordinator runtime: N independent coordinators
//! behind one thin router.
//!
//! A single coordinator thread owns every tally, deadline, audit, and WAL
//! append — the throughput ceiling and recovery bottleneck of the live
//! runtime. Sharding splits that ownership: tasks hash by id
//! ([`smartred_core::execution::shard_of`]) to one of N coordinators, each
//! with its own WAL segment (`wal-shard-<k>.jsonl`), its own worker
//! sub-pool over a disjoint global node-id span
//! ([`smartred_core::execution::shard_worker_span`]), and its own
//! journal. A router thread in front does admission control and load
//! shedding, then forwards each admitted submission to its owning shard.
//!
//! ## The journal contract
//!
//! Each shard's journal is an ordinary single-coordinator event stream.
//! [`Journal::merge_sharded`] merges them deterministically — by sim-time,
//! then shard id, then per-shard seq — into one stream that replays
//! through [`report_from_journal`] to the same report shape as a
//! single-coordinator run. With one shard the merge is the identity
//! (digest-preserving), so N=1 behaves bit-identically to the unsharded
//! runtime.
//!
//! ## Sharded recovery
//!
//! Shard WALs share nothing, so [`ShardedRuntime::recover`] replays them
//! independently and in parallel (scoped threads via
//! [`smartred_core::parallel::map_indexed`]): recovery time is
//! proportional to the *largest* shard's log, not the whole run. Each
//! shard recovers exactly-once semantics on its own — decided tasks are
//! never re-run or re-delivered — and all recovered verdicts fan into one
//! shared client.
//!
//! ## Router-level admission
//!
//! The router's admission gate is a global outstanding-task counter
//! checked against [`ShardedConfig::admission_cap`]: a submission is shed
//! iff the counter is full, *before* any task id is routed. Shed
//! accounting is therefore a pure function of the submission/verdict
//! interleaving — the same number of submissions shed at matched capacity
//! no matter how many shards sit behind the router. Because outstanding
//! submissions never exceed the cap and every internal queue holds at
//! least `admission_cap`, internal forwards never drop or block
//! indefinitely.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use smartred_core::execution::{shard_of, shard_worker_span};
use smartred_core::parallel::{map_indexed, Threads};
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::journal::{Journal, RunEvent};

use crate::coordinator::{
    AdmissionCounters, AdmissionStats, ClientOp, Runtime, RuntimeConfig, RuntimeRun, Submission,
    SubmitOutcome, TaskVerdict,
};
use crate::recovery::{RecoveryError, RecoveryReport};
use crate::report::{report_from_journal, RuntimeReport};
use crate::worker::Worker;
use crate::workload::Payload;

/// Configuration of a sharded runtime.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Per-shard coordinator template. `base.workers` is the *total*
    /// worker budget across all shards (split into disjoint sub-pools by
    /// [`shard_worker_span`]); `base.wal` is ignored in favor of
    /// [`ShardedConfig::wal_dir`]; everything else applies to each shard
    /// as-is.
    pub base: RuntimeConfig,
    /// Number of coordinator shards (clamped up to 1).
    pub shards: usize,
    /// Directory for the per-shard WAL segments `wal-shard-<k>.jsonl`.
    /// `None` disables write-ahead logging.
    pub wal_dir: Option<PathBuf>,
    /// Router-level admission cap: the maximum number of outstanding
    /// (admitted, verdict not yet received) tasks. Submissions past it
    /// are shed. Shed counts at matched capacity are independent of the
    /// shard count.
    pub admission_cap: usize,
    /// Chaos hook: per-shard [`RuntimeConfig::crash_after_events`]
    /// overrides, indexed by shard id. Lets a test crash different shards
    /// at different points of their own event streams. Test-only.
    pub crash_after: Option<Vec<Option<u64>>>,
}

impl ShardedConfig {
    /// A sharded config over `shards` coordinators with default per-shard
    /// settings and an admission cap equal to the default queue depth.
    pub fn new(shards: usize) -> Self {
        let base = RuntimeConfig::default();
        let admission_cap = base.queue_cap;
        Self {
            base,
            shards,
            wal_dir: None,
            admission_cap,
            crash_after: None,
        }
    }

    /// The WAL segment path of shard `k` under `dir`.
    pub fn wal_segment(dir: &Path, k: usize) -> PathBuf {
        dir.join(format!("wal-shard-{k}.jsonl"))
    }

    /// Total worker budget across all shards.
    fn total_workers(&self) -> usize {
        self.base
            .workers
            .unwrap_or_else(|| Threads::Auto.get())
            .max(1)
    }

    /// The resolved [`RuntimeConfig`] of shard `k`.
    fn shard_cfg(&self, k: usize) -> RuntimeConfig {
        let shards = self.shards.max(1);
        let (node_base, count) = shard_worker_span(self.total_workers(), shards, k);
        let mut cfg = self.base.clone();
        cfg.workers = Some(count);
        cfg.node_base = node_base;
        // Any one shard may transiently hold every outstanding
        // submission, so its queue must fit the full admission cap — the
        // invariant that keeps the router's forwards non-blocking.
        cfg.queue_cap = self.admission_cap.max(1);
        cfg.wal = self.wal_dir.as_ref().map(|d| Self::wal_segment(d, k));
        if let Some(crash) = &self.crash_after {
            cfg.crash_after_events = crash.get(k).copied().flatten();
        }
        cfg
    }
}

/// The finished sharded run: per-shard runs plus the merged view.
#[derive(Debug)]
pub struct ShardedRun {
    /// Each shard's own [`RuntimeRun`], indexed by shard id.
    pub shards: Vec<RuntimeRun>,
    /// The deterministic merge of the per-shard journals (by sim-time,
    /// then shard id, then seq) — the stream [`report_from_journal`]
    /// replays to the same report shape as a single-coordinator run.
    ///
    /// For a run recovered from *checkpointed* shard WALs this merge
    /// covers only the post-seal suffixes (each shard's in-memory
    /// journal resumes at its snapshot seq), so it is a partial history
    /// by design — the pre-checkpoint events live in the snapshots, not
    /// the segments.
    pub journal: Journal,
    /// The merged report, replayed from [`ShardedRun::journal`].
    ///
    /// Same caveat: after a checkpointed recovery this fold sees only
    /// the suffix, so the authoritative full-history totals are the
    /// per-shard [`RecoveryReport::report`]s carried forward by each
    /// coordinator, not this merge.
    pub report: RuntimeReport,
    /// Router-level admission tally (sheds never reach any shard and are
    /// not journaled).
    pub admission: AdmissionStats,
    /// Whether any shard hit its chaos crash point.
    pub crashed: bool,
}

/// A sharded live runtime: N coordinators plus the router thread.
///
/// Create with [`ShardedRuntime::start`] (or
/// [`ShardedRuntime::recover`]), submit through [`ShardedRuntime::client`]
/// handles, then drop every client and call [`ShardedRuntime::finish`].
#[derive(Debug)]
pub struct ShardedRuntime {
    shards: Vec<Runtime>,
    router_tx: Option<SyncSender<ClientOp>>,
    router: Option<JoinHandle<()>>,
    next_task: Arc<AtomicU32>,
    outstanding: Arc<AtomicUsize>,
    counters: Arc<AdmissionCounters>,
    admission_cap: usize,
    accept_below: usize,
}

impl ShardedRuntime {
    /// Starts `cfg.shards` coordinators and the router. `make_worker`
    /// builds the executor for each *global* node id — cartel membership
    /// and fault seeding see one id space regardless of the shard count.
    pub fn start<S, F>(cfg: ShardedConfig, strategy: S, make_worker: F) -> Self
    where
        S: RedundancyStrategy<bool> + Clone + Send + Sync + 'static,
        F: Fn(u32) -> Box<dyn Worker> + Send + Sync + 'static,
    {
        let shards = cfg.shards.max(1);
        let make: Arc<dyn Fn(u32) -> Box<dyn Worker> + Send + Sync> = Arc::new(make_worker);
        let runtimes: Vec<Runtime> = (0..shards)
            .map(|k| {
                let make = make.clone();
                Runtime::start(cfg.shard_cfg(k), strategy.clone(), move |w| make(w))
            })
            .collect();
        Self::assemble(&cfg, runtimes, 0, 0)
    }

    /// Restarts a crashed sharded run from its per-shard WAL segments,
    /// replaying the segments **in parallel** — one scoped thread per
    /// shard, so recovery time tracks the largest shard's log.
    ///
    /// `roster` maps task ids to payloads exactly as in
    /// [`Runtime::recover`]; it is partitioned by [`shard_of`] and each
    /// shard recovers only its own tasks. Verdicts of resumed and
    /// re-admitted tasks arrive on the returned client.
    ///
    /// # Errors
    ///
    /// The first shard's [`RecoveryError`], if any shard fails to
    /// recover.
    pub fn recover<S, F>(
        cfg: ShardedConfig,
        strategy: S,
        make_worker: F,
        roster: &[(u32, Payload)],
    ) -> Result<(Self, ShardedClient, Vec<RecoveryReport>), RecoveryError>
    where
        S: RedundancyStrategy<bool> + Clone + Send + Sync + 'static,
        F: Fn(u32) -> Box<dyn Worker> + Send + Sync + 'static,
    {
        let shards = cfg.shards.max(1);
        let make: Arc<dyn Fn(u32) -> Box<dyn Worker> + Send + Sync> = Arc::new(make_worker);
        let (verdict_tx, verdict_rx) = mpsc::channel();
        let mut rosters: Vec<Vec<(u32, Payload)>> = vec![Vec::new(); shards];
        for (task, payload) in roster {
            rosters[shard_of(*task, shards)].push((*task, payload.clone()));
        }
        let results = map_indexed(shards, Threads::fixed(shards), |k| {
            let make = make.clone();
            Runtime::recover_with(
                cfg.shard_cfg(k),
                strategy.clone(),
                move |w| make(w),
                &rosters[k],
                &verdict_tx,
            )
        });
        let mut runtimes = Vec::with_capacity(shards);
        let mut reports = Vec::with_capacity(shards);
        for result in results {
            let (runtime, report) = result?;
            runtimes.push(runtime);
            reports.push(report);
        }
        let next_task = runtimes
            .iter()
            .map(|r| r.next_task.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        let outstanding: usize = reports
            .iter()
            .map(|r| r.tasks_resumed + r.tasks_seeded)
            .sum();
        let runtime = Self::assemble(&cfg, runtimes, next_task, outstanding);
        let client = ShardedClient {
            router_tx: runtime.router_tx.clone().expect("runtime just started"),
            verdict_tx,
            verdict_rx,
            next_task: runtime.next_task.clone(),
            outstanding: runtime.outstanding.clone(),
            counters: runtime.counters.clone(),
            admission_cap: runtime.admission_cap,
            accept_below: runtime.accept_below,
        };
        Ok((runtime, client, reports))
    }

    fn assemble(
        cfg: &ShardedConfig,
        runtimes: Vec<Runtime>,
        next_task: u32,
        outstanding: usize,
    ) -> Self {
        let admission_cap = cfg.admission_cap.max(1);
        let (router_tx, router_rx) = mpsc::sync_channel(admission_cap);
        let shard_txs: Vec<SyncSender<ClientOp>> = runtimes
            .iter()
            .map(|r| r.submit_tx.clone().expect("shard just started"))
            .collect();
        let router = spawn_router(router_rx, shard_txs);
        Self {
            shards: runtimes,
            router_tx: Some(router_tx),
            router: Some(router),
            next_task: Arc::new(AtomicU32::new(next_task)),
            outstanding: Arc::new(AtomicUsize::new(outstanding)),
            counters: Arc::new(AdmissionCounters::default()),
            admission_cap,
            accept_below: cfg.base.max_active.max(1).saturating_mul(cfg.shards.max(1)),
        }
    }

    /// Creates a submission handle. Clones of the handle (and further
    /// calls) share the admission gate but receive verdicts only for
    /// their own submissions.
    pub fn client(&self) -> ShardedClient {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        ShardedClient {
            router_tx: self
                .router_tx
                .clone()
                .expect("sharded runtime already finished"),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            outstanding: self.outstanding.clone(),
            counters: self.counters.clone(),
            admission_cap: self.admission_cap,
            accept_below: self.accept_below,
        }
    }

    /// Whether any shard's coordinator has hit its chaos crash point.
    pub fn is_crashed(&self) -> bool {
        self.shards.iter().any(Runtime::is_crashed)
    }

    /// Shuts down: stops the router, finishes every shard, and returns
    /// the per-shard runs plus the deterministic merged journal/report.
    ///
    /// Every [`ShardedClient`] must be dropped first, exactly as with
    /// [`Runtime::finish`].
    pub fn finish(mut self) -> ShardedRun {
        drop(self.router_tx.take());
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        let mut shards: Vec<RuntimeRun> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Runtime::finish)
            .collect();
        let parts: Vec<Journal> = shards.iter().map(|run| run.journal.clone()).collect();
        let journal = Journal::merge_sharded(&parts);
        let report = report_from_journal(&journal);
        let crashed = shards.iter().any(|run| run.crashed);
        // The router's gate is the only admission accounting — per-shard
        // counters never see a submission (clients talk to the router).
        for run in &mut shards {
            run.admission = AdmissionStats::default();
        }
        ShardedRun {
            shards,
            journal,
            report,
            admission: self.counters.snapshot(),
            crashed,
        }
    }
}

/// Forwards admitted submissions to their owning shard. The admission
/// gate bounds outstanding submissions at the shard queues' capacity, so
/// the blocking `send` below can always make progress; it errors (and the
/// router exits) only when a shard is gone — shutdown or crash.
fn spawn_router(rx: Receiver<ClientOp>, shard_txs: Vec<SyncSender<ClientOp>>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("smartred-router".into())
        .spawn(move || {
            let shards = shard_txs.len();
            while let Ok(op) = rx.recv() {
                // Submissions route by task id; annotations follow the
                // task they reference (so merge_sharded keeps them next to
                // that task's events) and fall back to shard 0 for
                // task-less events such as stage verdicts.
                let k = match &op {
                    ClientOp::Submit(sub) => shard_of(sub.task, shards),
                    ClientOp::Annotate(event) => event.task().map_or(0, |t| shard_of(t, shards)),
                };
                if shard_txs[k].send(op).is_err() {
                    return;
                }
            }
        })
        .expect("spawn router thread")
}

/// A submission handle to a [`ShardedRuntime`]. Task ids are assigned
/// globally and routed to shards by [`shard_of`]; admission is decided at
/// the router's global gate before routing.
#[derive(Debug)]
pub struct ShardedClient {
    router_tx: SyncSender<ClientOp>,
    verdict_tx: Sender<TaskVerdict>,
    verdict_rx: Receiver<TaskVerdict>,
    next_task: Arc<AtomicU32>,
    outstanding: Arc<AtomicUsize>,
    counters: Arc<AdmissionCounters>,
    admission_cap: usize,
    accept_below: usize,
}

impl ShardedClient {
    /// Submits one task through the router. Never blocks: when the
    /// admission gate is full — `admission_cap` tasks admitted and not
    /// yet resolved — the submission is shed *before* a task id is
    /// burned, and the count of sheds at matched capacity is independent
    /// of the shard count.
    pub fn submit(&self, payload: Payload) -> SubmitOutcome {
        let admitted = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.admission_cap).then_some(n + 1)
            });
        let Ok(prev) = admitted else {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Shed;
        };
        let task = self.next_task.fetch_add(1, Ordering::Relaxed);
        let submission = Submission {
            task,
            payload: Arc::new(payload),
            verdict_tx: self.verdict_tx.clone(),
        };
        match self.router_tx.try_send(ClientOp::Submit(submission)) {
            Ok(()) => {
                if prev < self.accept_below {
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Accepted { task }
                } else {
                    self.counters.queued.fetch_add(1, Ordering::Relaxed);
                    SubmitOutcome::Queued { task }
                }
            }
            // Unreachable while the gate invariant holds (the router
            // queue fits the full cap); defensive for a dead router.
            Err(_) => {
                self.release();
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        }
    }

    /// Journals `event` durably into the owning shard's WAL (routed like
    /// a submission: by the task the event references, shard 0 for
    /// task-less events). Annotations bypass the admission gate — they
    /// resolve no verdict — and block rather than shed; returns `false`
    /// once the runtime has shut down or crashed.
    pub fn annotate(&self, event: RunEvent) -> bool {
        self.router_tx.send(ClientOp::Annotate(event)).is_ok()
    }

    /// Blocks for this client's next verdict; `None` once the runtime
    /// has shut down and no verdicts remain.
    pub fn recv(&self) -> Option<TaskVerdict> {
        let verdict = self.verdict_rx.recv().ok()?;
        self.release();
        Some(verdict)
    }

    /// Like [`recv`](Self::recv) with a timeout; `None` on timeout or
    /// shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict> {
        let verdict = self.verdict_rx.recv_timeout(timeout).ok()?;
        self.release();
        Some(verdict)
    }

    /// Returns one admission slot to the gate.
    fn release(&self) {
        let _ = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }
}

impl Clone for ShardedClient {
    fn clone(&self) -> Self {
        let (verdict_tx, verdict_rx) = mpsc::channel();
        Self {
            router_tx: self.router_tx.clone(),
            verdict_tx,
            verdict_rx,
            next_task: self.next_task.clone(),
            outstanding: self.outstanding.clone(),
            counters: self.counters.clone(),
            admission_cap: self.admission_cap,
            accept_below: self.accept_below,
        }
    }
}
