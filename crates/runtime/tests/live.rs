//! Integration tests for the live runtime: the IR-vs-TR acceptance run,
//! replay cross-checks, overload shedding, timeout→reissue, determinism,
//! and journal invariants — at worker counts 1 and 8.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use smartred_core::analysis;
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::strategy::{Iterative, RedundancyStrategy, Traditional};
use smartred_desim::journal::assert as jassert;
use smartred_runtime::{
    report_from_journal, FaultProfile, FaultyWorker, Payload, Runtime, RuntimeConfig, RuntimeRun,
    SubmitOutcome, TaskVerdict,
};
use smartred_sat::{decompose, random_3sat, ThreeSatConfig};

/// Runs `num_tasks` 3-SAT block tasks through a fresh runtime, retrying
/// shed submissions, and returns the finished run plus every verdict.
fn run_sat<S>(
    strategy: S,
    workers: usize,
    seed: u64,
    profile: FaultProfile,
    num_tasks: usize,
    deadline: Duration,
) -> (RuntimeRun, Vec<TaskVerdict>)
where
    S: RedundancyStrategy<bool> + Send + Sync + 'static,
{
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let blocks = decompose(formula.num_vars(), num_tasks);
    assert_eq!(blocks.len(), num_tasks);
    let cfg = RuntimeConfig {
        workers: Some(workers),
        queue_cap: num_tasks + 8,
        max_active: 64,
        deadline,
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, strategy, move |_| {
        Box::new(FaultyWorker::new(seed, profile))
    });
    let client = runtime.client();
    for block in blocks {
        loop {
            let outcome = client.submit(Payload::Sat {
                formula: formula.clone(),
                block,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let mut verdicts = Vec::with_capacity(num_tasks);
    for _ in 0..num_tasks {
        verdicts.push(client.recv().expect("runtime dropped a verdict"));
    }
    drop(client);
    (runtime.finish(), verdicts)
}

const THIRTY_PCT_FAULTY: FaultProfile = FaultProfile {
    wrong_rate: 0.3,
    hang_rate: 0.0,
    crash_rate: 0.0,
    think: Duration::ZERO,
};

/// The headline acceptance run: a seeded 30%-faulty pool, 1,000 tasks.
/// Iterative redundancy must reach the target confidence on ≥ 99% of
/// them while spending fewer job executions than traditional redundancy
/// at matched achieved reliability — verified from the live report AND
/// independently by folding the runtime's journal.
#[test]
fn ir_beats_tr_at_matched_reliability_live() {
    let r = Reliability::new(0.7).unwrap();
    // Smallest margin whose predicted reliability (Eq. 6) meets the 0.99
    // target: d = 6 at r = 0.7.
    let d = (1..=12)
        .find(|&d| analysis::iterative::reliability(VoteMargin::new(d).unwrap(), r) >= 0.99)
        .expect("a margin meeting the target exists");
    let (ir_run, ir_verdicts) = run_sat(
        Iterative::new(VoteMargin::new(d).unwrap()),
        8,
        42,
        THIRTY_PCT_FAULTY,
        1000,
        Duration::from_secs(2),
    );
    assert_eq!(ir_run.report.tasks_completed, 1000);
    assert_eq!(ir_verdicts.len(), 1000);
    let ir_reliability = ir_run.report.reliability();
    assert!(
        ir_reliability >= 0.99,
        "IR must reach target confidence on ≥ 99% of tasks, got {ir_reliability}"
    );
    // Replay cross-check: the journal folds to the identical report.
    assert_eq!(report_from_journal(&ir_run.journal), ir_run.report);

    // Traditional redundancy at matched reliability: the smallest odd k
    // whose predicted reliability (Eq. 2) meets what IR achieved.
    let k = (1..=61)
        .step_by(2)
        .find(|&k| analysis::traditional::reliability(KVotes::new(k).unwrap(), r) >= ir_reliability)
        .unwrap_or(61);
    let (tr_run, _) = run_sat(
        Traditional::new(KVotes::new(k).unwrap()),
        8,
        42,
        THIRTY_PCT_FAULTY,
        1000,
        Duration::from_secs(2),
    );
    assert_eq!(tr_run.report.tasks_completed, 1000);
    assert_eq!(report_from_journal(&tr_run.journal), tr_run.report);
    let tr_reliability = tr_run.report.reliability();
    assert!(
        tr_reliability >= ir_reliability - 0.005,
        "TR(k={k}) must match IR reliability: {tr_reliability} vs {ir_reliability}"
    );
    assert!(
        ir_run.report.total_jobs < tr_run.report.total_jobs,
        "IR must cost fewer jobs: IR {} vs TR(k={k}) {}",
        ir_run.report.total_jobs,
        tr_run.report.total_jobs
    );
}

/// Same run with a single worker: no deadlocks, same votes as any other
/// schedule would produce.
#[test]
fn single_worker_completes_without_deadlock() {
    let (run, verdicts) = run_sat(
        Iterative::new(VoteMargin::new(3).unwrap()),
        1,
        7,
        THIRTY_PCT_FAULTY,
        100,
        Duration::from_secs(2),
    );
    assert_eq!(run.report.tasks_completed, 100);
    assert_eq!(verdicts.len(), 100);
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// Votes, verdicts, and job counts are a pure function of the seed: two
/// runs at different worker counts agree on every vote-derived quantity
/// (timings differ, so only structure is compared).
#[test]
fn same_seed_reproduces_votes_across_worker_counts() {
    let strategy = || Iterative::new(VoteMargin::new(4).unwrap());
    let (a, va) = run_sat(
        strategy(),
        2,
        99,
        THIRTY_PCT_FAULTY,
        150,
        Duration::from_secs(2),
    );
    let (b, vb) = run_sat(
        strategy(),
        8,
        99,
        THIRTY_PCT_FAULTY,
        150,
        Duration::from_secs(2),
    );
    assert_eq!(a.report.tasks_correct, b.report.tasks_correct);
    assert_eq!(a.report.total_jobs, b.report.total_jobs);
    // (Welford means are fold-order sensitive in the last float bits, so
    // per-task equality is asserted on the sorted verdicts instead.)
    let key = |v: &TaskVerdict| (v.task, v.vote, v.answer, v.jobs);
    let mut ka: Vec<_> = va.iter().map(key).collect();
    let mut kb: Vec<_> = vb.iter().map(key).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    assert_eq!(ka, kb, "verdicts must not depend on the schedule");
}

/// Saturating the bounded submission queue sheds instead of blocking or
/// collapsing, and shed submissions succeed on retry.
#[test]
fn saturation_sheds_and_recovers() {
    let cfg = RuntimeConfig {
        workers: Some(1),
        inbox_cap: 1,
        queue_cap: 2,
        max_active: 2,
        deadline: Duration::from_secs(5),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3).unwrap()), move |_| {
        Box::new(FaultyWorker::new(1, FaultProfile::default()))
    });
    let client = runtime.client();
    let total = 60;
    for _ in 0..total {
        loop {
            let outcome = client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::from_millis(2),
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut correct = 0;
    for _ in 0..total {
        let verdict = client.recv().expect("verdict for every admitted task");
        if verdict.vote == Some(true) {
            correct += 1;
        }
    }
    drop(client);
    let run = runtime.finish();
    assert_eq!(run.report.tasks_completed, total);
    assert_eq!(correct, total, "honest pool must answer every task");
    assert!(
        run.admission.shed > 0,
        "a 2-deep queue under a 60-task burst must shed (shed {})",
        run.admission.shed
    );
    assert!(run.admission.shed_rate() > 0.0);
    assert_eq!(
        run.admission.accepted + run.admission.queued,
        total as u64,
        "every task was eventually admitted"
    );
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// Hung jobs miss their wall-clock deadline, are reissued on fresh RNG
/// streams, and every task still converges to the honest answer. The
/// journal witnesses the timeout→retry causality.
#[test]
fn hangs_time_out_and_reissue_preserves_correctness() {
    let profile = FaultProfile {
        wrong_rate: 0.0,
        hang_rate: 0.25,
        crash_rate: 0.0,
        think: Duration::ZERO,
    };
    let (run, verdicts) = run_sat(
        Traditional::new(KVotes::new(3).unwrap()),
        4,
        13,
        profile,
        40,
        Duration::from_millis(100),
    );
    assert_eq!(run.report.tasks_completed, 40);
    assert!(
        run.report.timeouts > 0,
        "a 25% hang rate must produce timeouts"
    );
    assert_eq!(run.report.timeouts, run.report.retries);
    assert_eq!(
        run.report.tasks_correct, 40,
        "reissue must preserve correctness with an honest pool"
    );
    assert!(verdicts.iter().all(|v| v.answer.is_some()));
    jassert::events(run.journal.events())
        .time_ordered()
        .retry_follows_timeout()
        .waves_well_formed();
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// The runtime-journal quorum property: every firm verdict is preceded by
/// at least `quorum` matching votes for that task (quorum = the margin d
/// for iterative redundancy), alongside the structural DSL invariants —
/// the same assertions that run against simulator journals.
#[test]
fn runtime_journal_satisfies_quorum_and_causality() {
    let profile = FaultProfile {
        wrong_rate: 0.3,
        hang_rate: 0.1,
        crash_rate: 0.0,
        think: Duration::ZERO,
    };
    let d = 4;
    let (run, _) = run_sat(
        Iterative::new(VoteMargin::new(d).unwrap()),
        8,
        21,
        profile,
        200,
        Duration::from_millis(100),
    );
    assert_eq!(run.report.tasks_completed, 200);
    jassert::events(run.journal.events())
        .time_ordered()
        .retry_follows_timeout()
        .waves_well_formed()
        .verdicts_have_quorum(d);
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// A job cap below the first wave fails every task as capped, delivering
/// vote-less verdicts instead of wedging the runtime.
#[test]
fn job_cap_fails_tasks_gracefully() {
    let cfg = RuntimeConfig {
        workers: Some(2),
        job_cap: Some(2),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3).unwrap()), move |_| {
        Box::new(FaultyWorker::new(5, FaultProfile::default()))
    });
    let client = runtime.client();
    for _ in 0..5 {
        assert_ne!(
            client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            }),
            SubmitOutcome::Shed
        );
    }
    for _ in 0..5 {
        let verdict = client.recv().expect("capped tasks still deliver");
        assert_eq!(verdict.vote, None);
        assert_eq!(verdict.jobs, 0);
    }
    drop(client);
    let run = runtime.finish();
    assert_eq!(run.report.tasks_capped, 5);
    assert_eq!(run.report.tasks_completed, 0);
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// Regression for the reissue double-count: a reply that lands *after*
/// its job timed out and was reissued must be journaled as
/// [`StaleReplyDropped`] and never tallied — previously a late vote could
/// be counted alongside its replacement's. Every task must tally exactly
/// k votes, no matter how many late duplicates straggle in.
#[test]
fn late_reply_after_reissue_is_dropped_not_double_counted() {
    use smartred_runtime::{JobAssignment, Worker};

    /// Sleeps far past the deadline on every replica-0 job, then answers
    /// anyway; all later replicas answer promptly. The replica-0 reply
    /// therefore always arrives after its timeout reissued the job.
    struct SlowFirstReplica;
    impl Worker for SlowFirstReplica {
        fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
            if job.replica == 0 {
                std::thread::sleep(Duration::from_millis(150));
            }
            Some((true, job.payload.execute()))
        }
    }

    let k = 3;
    let cfg = RuntimeConfig {
        workers: Some(1),
        deadline: Duration::from_millis(50),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(k).unwrap()), |_| {
        Box::new(SlowFirstReplica)
    });
    let client = runtime.client();
    let total = 2;
    for _ in 0..total {
        assert_ne!(
            client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            }),
            SubmitOutcome::Shed
        );
    }
    for _ in 0..total {
        let verdict = client.recv().expect("every task still reaches a verdict");
        assert_eq!(verdict.vote, Some(true));
    }
    drop(client);
    let run = runtime.finish();
    assert_eq!(run.report.tasks_completed, total);
    assert!(
        run.report.stale_replies > 0,
        "the late replica-0 replies must be dropped as stale"
    );
    assert_eq!(run.report.timeouts, run.report.retries);
    let mut tallies = std::collections::HashMap::new();
    for e in run.journal.events() {
        if let smartred_desim::journal::RunEvent::VoteTallied { task, .. } = e.event {
            *tallies.entry(task).or_insert(0u32) += 1;
        }
    }
    for (task, count) in tallies {
        assert_eq!(
            count, k as u32,
            "task {task} must tally exactly k votes — late duplicates never count"
        );
    }
    jassert::events(run.journal.events())
        .time_ordered()
        .retry_follows_timeout()
        .waves_well_formed();
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// Regression for hedge double-firing on the reissue paths: a replica
/// that straggles past its deadline is reissued under a bumped epoch, and
/// the hedge check armed at its dispatch fires *after* the timeout — the
/// stale arm must be skipped (origin gone / epoch advanced), never
/// launching a twin for a resolved job or exceeding the per-epoch budget.
/// Runs alongside the `StaleReplyDropped` late-reply regression above:
/// both guard the same staleness discipline, one for votes, one for
/// hedges.
#[test]
fn deadline_reissue_never_double_fires_hedges() {
    use smartred_core::hedge::HedgePolicy;
    use smartred_desim::journal::RunEvent;
    use smartred_runtime::{JobAssignment, Worker};

    /// Replica 0 of every task straggles far past the deadline (on every
    /// worker — the twin straggles too, so the pair lapses and the
    /// timeout path reissues); later replicas answer promptly, warming
    /// the estimator fast.
    struct SlowFirstReplica;
    impl Worker for SlowFirstReplica {
        fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
            if job.replica == 0 {
                std::thread::sleep(Duration::from_millis(160));
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
            Some((true, job.payload.execute()))
        }
    }

    let policy = HedgePolicy {
        quantile: 0.5,
        min_samples: 5,
        multiplier: 2.0,
        max_per_task: 1,
    };
    let cfg = RuntimeConfig {
        workers: Some(4),
        deadline: Duration::from_millis(60),
        hedge: Some(policy),
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3).unwrap()), |_| {
        Box::new(SlowFirstReplica)
    });
    let client = runtime.client();
    let total = 12;
    for _ in 0..total {
        loop {
            let outcome = client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for _ in 0..total {
        let verdict = client.recv().expect("every task still reaches a verdict");
        assert_eq!(verdict.vote, Some(true));
    }
    drop(client);
    let run = runtime.finish();
    assert_eq!(run.report.tasks_completed, total);
    assert!(
        run.report.timeouts > 0,
        "the straggling first replicas must lapse and reissue"
    );
    assert_eq!(
        run.report.hedges_launched,
        run.report.hedges_won + run.report.hedges_wasted,
        "every launched twin settles exactly once"
    );
    // The double-fire guards, observed end-to-end in the journal: no twin
    // for a resolved origin, and at most `max_per_task` launches per task
    // epoch, across both the deadline-reissue and stale-arm paths.
    let mut resolved = std::collections::HashSet::new();
    let mut per_epoch: std::collections::HashMap<(u32, u32), u32> =
        std::collections::HashMap::new();
    for e in run.journal.events() {
        match e.event {
            RunEvent::HedgeLaunched {
                task,
                origin,
                epoch,
                ..
            } => {
                assert!(
                    !resolved.contains(&origin),
                    "twin launched for already-resolved origin {origin}"
                );
                let slot = per_epoch.entry((task, epoch)).or_insert(0);
                *slot += 1;
                assert!(
                    *slot <= policy.max_per_task,
                    "task {task} epoch {epoch} exceeded the hedge budget"
                );
            }
            RunEvent::JobReturned { job, .. }
            | RunEvent::JobTimedOut { job, .. }
            | RunEvent::WorkerCrashed { job, .. } => {
                resolved.insert(job);
            }
            _ => {}
        }
    }
    jassert::events(run.journal.events())
        .time_ordered()
        .retry_follows_timeout()
        .waves_well_formed();
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// The journal round-trips through JSONL so CI can archive live runs and
/// the digest tooling applies unchanged.
#[test]
fn runtime_journal_round_trips_jsonl() {
    let (run, _) = run_sat(
        Iterative::new(VoteMargin::new(2).unwrap()),
        2,
        3,
        THIRTY_PCT_FAULTY,
        20,
        Duration::from_secs(2),
    );
    let text = run.journal.to_jsonl();
    let restored = smartred_desim::journal::Journal::from_jsonl(&text).unwrap();
    assert_eq!(restored.events(), run.journal.events());
    assert_eq!(restored.digest(), run.journal.digest());
    assert_eq!(report_from_journal(&restored), run.report);
}
