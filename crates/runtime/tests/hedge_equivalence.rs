//! Hedged-execution equivalence battery for the live runtime: hedging is
//! verdict-invariant (same votes, verdicts, and job counts as the
//! unhedged run at the same seed), every launched twin settles exactly
//! once, the journal replays to the bit-identical report, and assignment
//! policies preserve the verdict stream — at worker counts 1 and 8 (the
//! CI `SMARTRED_THREADS` axes).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use smartred_core::execution::Assignment;
use smartred_core::hedge::HedgePolicy;
use smartred_core::params::VoteMargin;
use smartred_core::strategy::{Iterative, RedundancyStrategy};
use smartred_desim::journal::{EventKind, Journal};
use smartred_runtime::{
    report_from_journal, FaultProfile, FaultyWorker, JobAssignment, Payload, Runtime,
    RuntimeConfig, RuntimeRun, SubmitOutcome, TaskVerdict, Worker,
};
use smartred_sat::{decompose, random_3sat, ThreeSatConfig};

/// A worker whose *vote* is the pure `(seed, task, replica)` draw of
/// [`FaultyWorker`] but whose *service time* additionally depends on the
/// worker index: a seeded fraction of `(worker, task, replica)` triples
/// straggle. A hedge twin re-runs the same `(task, replica)` on a
/// different worker, so it redraws the delay (usually fast) while its
/// vote is bit-identical to the origin's — the property the whole layer
/// rests on.
struct StragglerWorker {
    index: u32,
    seed: u64,
    inner: FaultyWorker,
    slow: Duration,
    fast: Duration,
    slow_rate: f64,
}

impl StragglerWorker {
    fn new(index: u32, seed: u64, profile: FaultProfile) -> Self {
        Self {
            index,
            seed,
            inner: FaultyWorker::new(seed, profile),
            slow: Duration::from_millis(40),
            fast: Duration::from_millis(1),
            slow_rate: 0.08,
        }
    }

    fn delay(&self, task: u32, replica: u32) -> Duration {
        // splitmix64 over (seed, worker, task, replica): machine slowness
        // is a property of the placement, not of the task.
        let mut x = self
            .seed
            .wrapping_add(u64::from(self.index) << 32)
            .wrapping_add(u64::from(task) << 16)
            .wrapping_add(u64::from(replica));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.slow_rate {
            self.slow
        } else {
            self.fast
        }
    }
}

impl Worker for StragglerWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        std::thread::sleep(self.delay(job.task, job.replica));
        self.inner.execute(job)
    }
}

const THIRTY_PCT_FAULTY: FaultProfile = FaultProfile {
    wrong_rate: 0.3,
    hang_rate: 0.0,
    crash_rate: 0.0,
    think: Duration::ZERO,
};

/// A hedge policy that warms quickly and fires well before the deadline
/// under the straggler mix above (q90 of the latency mix is the fast
/// mode, so threshold ≈ a few fast service times).
fn test_policy() -> HedgePolicy {
    HedgePolicy {
        quantile: 0.9,
        min_samples: 10,
        multiplier: 3.0,
        max_per_task: 2,
    }
}

/// Runs `num_tasks` 3-SAT block tasks through a fresh runtime on a
/// straggler-prone pool, under an optional hedge policy and an
/// assignment policy.
fn run_hedged(
    workers: usize,
    seed: u64,
    num_tasks: usize,
    hedge: Option<HedgePolicy>,
    assignment: Assignment,
) -> (RuntimeRun, Vec<TaskVerdict>) {
    let strategy = Iterative::new(VoteMargin::new(4).unwrap());
    run_with(workers, seed, num_tasks, hedge, assignment, strategy)
}

fn run_with<S>(
    workers: usize,
    seed: u64,
    num_tasks: usize,
    hedge: Option<HedgePolicy>,
    assignment: Assignment,
    strategy: S,
) -> (RuntimeRun, Vec<TaskVerdict>)
where
    S: RedundancyStrategy<bool> + Send + Sync + 'static,
{
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let formula = Arc::new(random_3sat(
        ThreeSatConfig {
            num_vars: 16,
            clause_ratio: 4.26,
        },
        &mut rng,
    ));
    let blocks = decompose(formula.num_vars(), num_tasks);
    let cfg = RuntimeConfig {
        workers: Some(workers),
        queue_cap: num_tasks + 8,
        max_active: 32,
        deadline: Duration::from_secs(2),
        hedge,
        assignment,
        ..RuntimeConfig::default()
    };
    let runtime = Runtime::start(cfg, strategy, move |index| {
        Box::new(StragglerWorker::new(index, seed, THIRTY_PCT_FAULTY))
    });
    let client = runtime.client();
    for block in blocks {
        loop {
            let outcome = client.submit(Payload::Sat {
                formula: formula.clone(),
                block,
            });
            if outcome != SubmitOutcome::Shed {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let mut verdicts = Vec::with_capacity(num_tasks);
    for _ in 0..num_tasks {
        verdicts.push(client.recv().expect("runtime dropped a verdict"));
    }
    drop(client);
    (runtime.finish(), verdicts)
}

/// Vote-derived structure of a run: everything hedging must not change.
fn verdict_keys(verdicts: &[TaskVerdict]) -> Vec<(u32, Option<bool>, Option<bool>, u32)> {
    let mut keys: Vec<_> = verdicts
        .iter()
        .map(|v| (v.task, v.vote, v.answer, v.jobs))
        .collect();
    keys.sort_unstable();
    keys
}

fn count(journal: &Journal, kind: EventKind) -> u64 {
    journal
        .events()
        .iter()
        .filter(|e| e.event.kind() == kind)
        .count() as u64
}

/// Hedging on a straggler-prone pool fires, wins races, and changes no
/// vote-derived quantity relative to the unhedged run at the same seed.
#[test]
fn hedging_is_verdict_invariant_on_the_live_runtime() {
    let (plain, vp) = run_hedged(8, 42, 150, None, Assignment::Random);
    let (hedged, vh) = run_hedged(8, 42, 150, Some(test_policy()), Assignment::Random);
    assert_eq!(plain.report.tasks_completed, 150);
    assert_eq!(hedged.report.tasks_completed, 150);
    assert!(
        hedged.report.hedges_launched > 0,
        "an 8% straggler rate must trigger hedges"
    );
    assert!(
        hedged.report.hedges_won > 0,
        "some twin must beat its straggling origin"
    );
    assert_eq!(
        hedged.report.hedges_launched,
        hedged.report.hedges_won + hedged.report.hedges_wasted,
        "every launched twin settles exactly once"
    );
    assert_eq!(plain.report.hedges_launched, 0);
    // Votes are pure in (seed, task, replica): hedging must not move a
    // single verdict, vote, answer, or per-task job count.
    assert_eq!(verdict_keys(&vp), verdict_keys(&vh));
    assert_eq!(plain.report.tasks_correct, hedged.report.tasks_correct);
    assert_eq!(plain.report.total_jobs, hedged.report.total_jobs);
}

/// The hedged journal replays to the bit-identical live report, its hedge
/// events round-trip through JSONL, and the event counts equal the live
/// counters (the journal is a pure observer of the hedging layer).
#[test]
fn hedged_journal_replays_and_round_trips() {
    let (run, _) = run_hedged(8, 7, 120, Some(test_policy()), Assignment::Random);
    assert!(run.report.hedges_launched > 0);
    assert_eq!(report_from_journal(&run.journal), run.report);
    assert_eq!(
        count(&run.journal, EventKind::HedgeLaunched),
        run.report.hedges_launched
    );
    assert_eq!(
        count(&run.journal, EventKind::HedgeWon),
        run.report.hedges_won
    );
    assert_eq!(
        count(&run.journal, EventKind::HedgeWasted),
        run.report.hedges_wasted
    );
    let text = run.journal.to_jsonl();
    let restored = Journal::from_jsonl(&text).unwrap();
    assert_eq!(restored.events(), run.journal.events());
    assert_eq!(restored.digest(), run.journal.digest());
    assert_eq!(report_from_journal(&restored), run.report);
}

/// Every assignment policy serves the identical verdict stream: placement
/// chooses *where* a replica runs, never *what* it votes.
#[test]
fn assignment_policies_preserve_the_verdict_stream() {
    let mut streams = Vec::new();
    for policy in Assignment::ALL {
        let (run, verdicts) = run_hedged(8, 21, 100, Some(test_policy()), policy);
        assert_eq!(
            run.report.tasks_completed,
            100,
            "{}: every task must decide",
            policy.name()
        );
        assert_eq!(
            run.report.hedges_launched,
            run.report.hedges_won + run.report.hedges_wasted,
            "{}: every twin settles",
            policy.name()
        );
        assert_eq!(report_from_journal(&run.journal), run.report);
        streams.push((policy.name(), verdict_keys(&verdicts)));
    }
    for pair in streams.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "assignment {} and {} must agree on every verdict",
            pair[0].0, pair[1].0
        );
    }
}

/// Worker-count invariance (the live analogue of the CI
/// `SMARTRED_THREADS` ∈ {1, 8} axis): hedge *counts* are wall-clock
/// noise, but every vote-derived quantity is schedule-independent, and
/// the twin-settlement invariant holds at both extremes.
#[test]
fn hedging_is_worker_count_invariant_on_votes() {
    let (one, v1) = run_hedged(1, 99, 80, Some(test_policy()), Assignment::LeastLoaded);
    let (eight, v8) = run_hedged(8, 99, 80, Some(test_policy()), Assignment::LeastLoaded);
    for run in [&one, &eight] {
        assert_eq!(run.report.tasks_completed, 80);
        assert_eq!(
            run.report.hedges_launched,
            run.report.hedges_won + run.report.hedges_wasted
        );
        assert_eq!(report_from_journal(&run.journal), run.report);
    }
    assert_eq!(verdict_keys(&v1), verdict_keys(&v8));
    assert_eq!(one.report.tasks_correct, eight.report.tasks_correct);
    assert_eq!(one.report.total_jobs, eight.report.total_jobs);
}

/// The per-epoch hedge budget holds in the journal: no task epoch ever
/// launches more than `max_per_task` twins, and no twin is launched for
/// an origin that already resolved — the double-fire guards observed
/// end-to-end.
#[test]
fn hedge_budget_and_origin_liveness_hold_in_the_journal() {
    let policy = test_policy();
    let (run, _) = run_hedged(8, 5, 120, Some(policy), Assignment::Random);
    assert!(run.report.hedges_launched > 0);
    let mut per_epoch: HashMap<(u32, u32), u32> = HashMap::new();
    let mut resolved: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for e in run.journal.events() {
        use smartred_desim::journal::RunEvent;
        match e.event {
            RunEvent::HedgeLaunched {
                task,
                origin,
                epoch,
                ..
            } => {
                assert!(
                    !resolved.contains(&origin),
                    "twin launched for already-resolved origin {origin}"
                );
                let slot = per_epoch.entry((task, epoch)).or_insert(0);
                *slot += 1;
                assert!(
                    *slot <= policy.max_per_task,
                    "task {task} epoch {epoch} exceeded the hedge budget"
                );
            }
            RunEvent::JobReturned { job, .. }
            | RunEvent::JobTimedOut { job, .. }
            | RunEvent::WorkerCrashed { job, .. } => {
                resolved.insert(job);
            }
            _ => {}
        }
    }
}
