//! Cross-shard test battery for the sharded multi-coordinator runtime:
//! N=1 identity against the unsharded runtime, shard-count equivalence of
//! verdicts (property), router-level shed accounting independence
//! (differential), and the audit re-tally shard-routing regression.
//!
//! The equivalence tests lean on the determinism contract: fault draws
//! are a pure function of `(seed, task, replica)`, so which shard — and
//! which worker — serves a replica cannot change its vote, and the merged
//! journal of an N-shard run must carry the same verdicts and per-task
//! job counts as the single-shard run at the same seed.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smartred_core::audit::{AuditPolicy, Cartel};
use smartred_core::execution::{shard_of, Assignment};
use smartred_core::hedge::HedgePolicy;
use smartred_core::params::VoteMargin;
use smartred_core::resilience::PoisonPolicy;
use smartred_core::strategy::Iterative;
use smartred_desim::journal::{Journal, RunEvent};
use smartred_runtime::{
    report_from_journal, CartelWorker, FaultProfile, FaultyWorker, JobAssignment, Payload, Runtime,
    RuntimeConfig, ShardedClient, ShardedConfig, ShardedRuntime, SubmitOutcome, TaskVerdict,
    Worker,
};

const SEED: u64 = 0x5eed_beef;
const MARGIN: usize = 3;

fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected worker crash"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn roster(n: usize) -> Vec<(u32, Payload)> {
    (0..n as u32)
        .map(|task| {
            (
                task,
                Payload::Synthetic {
                    answer: true,
                    work: Duration::ZERO,
                },
            )
        })
        .collect()
}

fn chaos_profile() -> FaultProfile {
    FaultProfile {
        wrong_rate: 0.25,
        hang_rate: 0.0,
        crash_rate: 0.15,
        think: Duration::ZERO,
    }
}

fn base_cfg() -> RuntimeConfig {
    RuntimeConfig {
        workers: Some(8),
        queue_cap: 512,
        max_active: 16,
        deadline: Duration::from_secs(30),
        poison: Some(PoisonPolicy { crash_limit: 2 }),
        ..RuntimeConfig::default()
    }
}

fn sharded_cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        base: base_cfg(),
        shards,
        wal_dir: None,
        admission_cap: 512,
        crash_after: None,
    }
}

fn submit_all(client: &ShardedClient, tasks: &[(u32, Payload)]) {
    for (task, payload) in tasks {
        match client.submit(payload.clone()) {
            SubmitOutcome::Shed => panic!("admission_cap admits the whole roster"),
            SubmitOutcome::Accepted { task: id } | SubmitOutcome::Queued { task: id } => {
                assert_eq!(id, *task, "submission order must assign roster ids");
            }
        }
    }
}

fn drain(client: &ShardedClient) -> Vec<TaskVerdict> {
    let mut verdicts = Vec::new();
    while let Some(v) = client.recv_timeout(Duration::from_millis(400)) {
        verdicts.push(v);
    }
    verdicts
}

/// Schedule-independent run structure: `(task, kind, vote, jobs)` sorted
/// by task, where kind is 0 = verdict, 1 = capped, 2 = poisoned.
fn shape(journal: &Journal) -> Vec<(u32, u8, Option<bool>, u64)> {
    let mut jobs: HashMap<u32, u64> = HashMap::new();
    let mut out = Vec::new();
    for e in journal.events() {
        match e.event {
            RunEvent::JobDispatched { task, .. } => *jobs.entry(task).or_default() += 1,
            RunEvent::VerdictReached { task, value, .. } => out.push((task, 0, Some(value))),
            RunEvent::TaskCapped { task } => out.push((task, 1, None)),
            RunEvent::TaskPoisoned { task, .. } => out.push((task, 2, None)),
            _ => {}
        }
    }
    out.sort_unstable();
    out.into_iter()
        .map(|(task, kind, vote)| (task, kind, vote, jobs.get(&task).copied().unwrap_or(0)))
        .collect()
}

fn run_sharded(shards: usize, tasks: &[(u32, Payload)]) -> smartred_runtime::ShardedRun {
    let runtime = ShardedRuntime::start(
        sharded_cfg(shards),
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
    );
    let client = runtime.client();
    submit_all(&client, tasks);
    let verdicts = drain(&client);
    assert_eq!(verdicts.len(), tasks.len());
    drop(client);
    runtime.finish()
}

/// With one shard the runtime *is* the unsharded runtime: the merge is
/// the identity (same digest as the shard's own journal), and the run
/// reaches the same verdicts and per-task job counts as `Runtime` under
/// the same seed and config.
#[test]
fn one_shard_is_identical_to_the_unsharded_runtime() {
    quiet_injected_panics();
    let tasks = roster(12);

    let unsharded = Runtime::start(
        base_cfg(),
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
    );
    let client = unsharded.client();
    for (_, payload) in &tasks {
        let _ = client.submit(payload.clone());
    }
    let mut got = 0;
    while got < tasks.len() {
        client.recv().expect("unsharded verdict");
        got += 1;
    }
    drop(client);
    let golden = unsharded.finish();

    let run = run_sharded(1, &tasks);
    assert_eq!(run.shards.len(), 1);
    // Bit-identical merge: with one shard, the merged journal is the
    // shard's journal, digest and all.
    assert_eq!(run.journal.digest(), run.shards[0].journal.digest());
    assert_eq!(run.journal.events(), run.shards[0].journal.events());
    // Same verdicts and job counts as the unsharded runtime.
    assert_eq!(shape(&run.journal), shape(&golden.journal));
    // The merged journal replays to the merged report exactly.
    assert_eq!(report_from_journal(&run.journal), run.report);
    assert_eq!(run.report, run.shards[0].report);
}

/// The merged journal of any shard count replays through
/// `report_from_journal` to a report equal to the sum of its parts, and
/// decision events stay exactly-once per task.
#[test]
fn merged_journal_replays_to_the_merged_report() {
    quiet_injected_panics();
    for shards in [2usize, 4] {
        let tasks = roster(20);
        let run = run_sharded(shards, &tasks);
        assert_eq!(report_from_journal(&run.journal), run.report);
        assert_eq!(
            run.report.tasks_completed + run.report.tasks_capped + run.report.tasks_poisoned,
            tasks.len()
        );
        // Per-shard journals carry only their own tasks.
        for (k, shard_run) in run.shards.iter().enumerate() {
            for e in shard_run.journal.events() {
                if let Some(task) = e.event.task() {
                    assert_eq!(
                        shard_of(task, shards),
                        k,
                        "task {task} leaked into shard {k}'s journal"
                    );
                }
            }
        }
        // Merge order: time-sorted, re-sequenced.
        assert!(run.journal.events().windows(2).all(|w| w[0].at <= w[1].at));
        let mut decided: HashMap<u32, u32> = HashMap::new();
        for e in run.journal.events() {
            if let RunEvent::VerdictReached { task, .. }
            | RunEvent::TaskCapped { task }
            | RunEvent::TaskPoisoned { task, .. } = e.event
            {
                *decided.entry(task).or_insert(0) += 1;
            }
        }
        for (task, count) in decided {
            assert_eq!(count, 1, "task {task} must be decided exactly once");
        }
    }
}

/// A worker that spins until the test opens the gate, then answers
/// honestly — the overload fixture for the shed-differential test.
struct Gated {
    open: Arc<AtomicBool>,
}

impl Worker for Gated {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        while !self.open.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Some((true, job.payload.execute()))
    }
}

/// Differential satellite: under overload, the router's admission gate
/// sheds exactly `submitted - admission_cap` submissions — the same count
/// for every shard count at matched capacity, because shedding is decided
/// by the global outstanding counter before any task id is routed.
#[test]
fn shed_count_at_matched_capacity_is_independent_of_shard_count() {
    const CAP: usize = 24;
    const SUBMITTED: usize = 80;
    let mut shed_counts = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let open = Arc::new(AtomicBool::new(false));
        let gate = open.clone();
        let mut cfg = sharded_cfg(shards);
        cfg.admission_cap = CAP;
        let runtime = ShardedRuntime::start(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            move |_| Box::new(Gated { open: gate.clone() }),
        );
        let client = runtime.client();
        let mut shed = 0u64;
        for i in 0..SUBMITTED {
            match client.submit(Payload::Synthetic {
                answer: true,
                work: Duration::ZERO,
            }) {
                SubmitOutcome::Shed => shed += 1,
                SubmitOutcome::Accepted { task } | SubmitOutcome::Queued { task } => {
                    assert!(
                        (task as usize) < CAP,
                        "admitted task ids stay dense (submission {i})"
                    );
                }
            }
        }
        assert_eq!(
            shed,
            (SUBMITTED - CAP) as u64,
            "{shards} shard(s): gate must shed exactly the overflow"
        );
        // Release the gate; every admitted task must resolve.
        open.store(true, Ordering::Release);
        for _ in 0..CAP {
            client.recv().expect("admitted task must deliver a verdict");
        }
        drop(client);
        let run = runtime.finish();
        assert_eq!(run.admission.shed, shed);
        assert_eq!(run.admission.accepted + run.admission.queued, CAP as u64);
        assert_eq!(run.report.tasks_completed, CAP);
        shed_counts.push(shed);
    }
    assert!(
        shed_counts.windows(2).all(|w| w[0] == w[1]),
        "shed counts diverged across shard counts: {shed_counts:?}"
    );
}

/// Regression satellite: audit-triggered re-tallies and voided verdicts
/// route through the owning shard's WAL — a cartel conviction on shard k
/// voids only shard-k verdicts, and no decision event ever lands in
/// another shard's segment.
#[test]
fn cartel_conviction_on_one_shard_only_voids_that_shards_verdicts() {
    quiet_injected_panics();
    const SHARDS: usize = 4;
    const WORKERS: usize = 16; // span of 4 per shard
                               // Members 0..2 sit inside shard 0's node span (0..4): every
                               // coordinated lie — and every conviction — belongs to shard 0.
    let cartel = Cartel::new(2, 0.4);
    let wal_dir =
        std::env::temp_dir().join(format!("smartred-shard-retally-{}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).unwrap();

    let mut cfg = sharded_cfg(SHARDS);
    cfg.base.workers = Some(WORKERS);
    cfg.base.poison = None;
    cfg.base.audit = AuditPolicy {
        spot_rate: 1.0,
        escalated_rate: 1.0,
        probation_audits: 0,
        strike_weight: 3,
    };
    cfg.base.audit_seed = SEED;
    cfg.wal_dir = Some(wal_dir.clone());
    let honest = FaultProfile::default();
    let runtime = ShardedRuntime::start(
        cfg,
        Iterative::new(VoteMargin::new(2).unwrap()),
        move |node| Box::new(CartelWorker::new(node, SEED, cartel, honest)),
    );
    let client = runtime.client();
    let tasks = roster(60);
    submit_all(&client, &tasks);
    let mut got = 0;
    while got < tasks.len() {
        client.recv().expect("every task must survive the cartel");
        got += 1;
    }
    drop(client);
    let run = runtime.finish();

    assert!(
        run.report.audit_failures > 0,
        "spot-rate 1.0 must catch the cartel lying"
    );
    let mut convicted_nodes = HashSet::new();
    for e in run.journal.events() {
        match e.event {
            RunEvent::AuditFailed { task, node } => {
                convicted_nodes.insert(node);
                assert_eq!(
                    shard_of(task, SHARDS),
                    0,
                    "conviction for task {task} outside the cartel's shard"
                );
            }
            RunEvent::VerdictVoided { task } | RunEvent::TaskRetallied { task } => {
                assert_eq!(
                    shard_of(task, SHARDS),
                    0,
                    "shard-0 conviction voided/re-tallied task {task} of another shard"
                );
            }
            _ => {}
        }
    }
    assert!(
        convicted_nodes.iter().all(|&n| cartel.is_member(n)),
        "only cartel members can be convicted, got {convicted_nodes:?}"
    );
    assert!(
        run.report.verdicts_voided > 0,
        "a half-span cartel must swing (and void) some tallies"
    );

    // The routing pin itself: each decision/audit event lives in its
    // owning shard's WAL segment, never a global stream.
    for k in 0..SHARDS {
        let path = ShardedConfig::wal_segment(&wal_dir, k);
        let text = std::fs::read_to_string(&path).unwrap();
        let wal = Journal::from_jsonl(&text).unwrap();
        assert_eq!(wal.events(), run.shards[k].journal.events());
        for e in wal.events() {
            if let Some(task) = e.event.task() {
                assert_eq!(
                    shard_of(task, SHARDS),
                    k,
                    "task {task} event in wal-shard-{k}.jsonl"
                );
            }
            if k != 0 {
                assert!(
                    !matches!(
                        e.event,
                        RunEvent::VerdictVoided { .. }
                            | RunEvent::TaskRetallied { .. }
                            | RunEvent::AuditFailed { .. }
                    ),
                    "shard {k} carries a shard-0 audit consequence"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A worker whose vote is the pure `(seed, task, replica)` draw of
/// [`FaultyWorker`] but whose service time additionally depends on the
/// worker index: a seeded 8% of `(worker, task, replica)` triples
/// straggle for 40 ms while the rest answer in 1 ms. Slowness is a
/// property of the placement, so a hedge twin on another worker redraws
/// the delay while voting bit-identically to its origin.
struct StragglerWorker {
    index: u32,
    inner: FaultyWorker,
}

impl StragglerWorker {
    fn new(index: u32, seed: u64) -> Self {
        let profile = FaultProfile {
            wrong_rate: 0.25,
            hang_rate: 0.0,
            // No crashes: whether a crash strike is suppressed depends on
            // whether a twin happens to be pending at crash time — a
            // wall-clock race — so poisoning under hedged crashes is not
            // a shard-count-invariant quantity. Votes are.
            crash_rate: 0.0,
            think: Duration::ZERO,
        };
        Self {
            index,
            inner: FaultyWorker::new(seed, profile),
        }
    }

    fn delay(&self, task: u32, replica: u32) -> Duration {
        let mut x = SEED
            .wrapping_add(u64::from(self.index) << 32)
            .wrapping_add(u64::from(task) << 16)
            .wrapping_add(u64::from(replica));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        if (x >> 11) as f64 / ((1u64 << 53) as f64) < 0.08 {
            Duration::from_millis(40)
        } else {
            Duration::from_millis(1)
        }
    }
}

impl Worker for StragglerWorker {
    fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
        std::thread::sleep(self.delay(job.task, job.replica));
        self.inner.execute(job)
    }
}

/// Shard-count equivalence of hedging decisions: with hedging enabled on
/// a straggler-prone pool, every shard count in {1, 2, 4, 8} reaches the
/// same verdicts, votes, and per-task job counts — placement and twin
/// races are wall-clock noise, votes are pure in `(seed, task, replica)`
/// — and each run keeps the twin-settlement and replay invariants.
#[test]
fn hedging_decisions_are_equivalent_across_shard_counts() {
    let tasks = roster(60);
    let mut shapes = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut cfg = sharded_cfg(shards);
        cfg.base.poison = None;
        cfg.base.hedge = Some(HedgePolicy {
            quantile: 0.9,
            min_samples: 10,
            multiplier: 3.0,
            max_per_task: 2,
        });
        cfg.base.assignment = Assignment::LeastLoaded;
        let runtime = ShardedRuntime::start(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |index| Box::new(StragglerWorker::new(index, SEED)),
        );
        let client = runtime.client();
        submit_all(&client, &tasks);
        let verdicts = drain(&client);
        assert_eq!(verdicts.len(), tasks.len(), "{shards} shard(s)");
        drop(client);
        let run = runtime.finish();
        assert_eq!(
            run.report.hedges_launched,
            run.report.hedges_won + run.report.hedges_wasted,
            "{shards} shard(s): every launched twin settles exactly once"
        );
        // The merged hedged journal replays to the merged report exactly.
        assert_eq!(report_from_journal(&run.journal), run.report);
        if shards == 1 {
            assert!(
                run.report.hedges_launched > 0,
                "an 8% straggler rate on 8 workers must trigger hedges"
            );
        }
        shapes.push((shards, shape(&run.journal)));
    }
    for pair in shapes.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "hedging decisions diverged between {} and {} shard(s)",
            pair[0].0, pair[1].0
        );
    }
}

mod equivalence_property {
    //! Property satellite: for random workload sizes, seeds, and any
    //! shard count in {1, 2, 4, 8}, the merged sharded journal carries
    //! verdicts identical to the single-shard run at the same seed.

    use super::*;
    use proptest::prelude::*;

    fn run_with(
        shards: usize,
        seed: u64,
        tasks: &[(u32, Payload)],
    ) -> Vec<(u32, u8, Option<bool>, u64)> {
        let runtime = ShardedRuntime::start(
            sharded_cfg(shards),
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            move |_| Box::new(FaultyWorker::new(seed, chaos_profile())),
        );
        let client = runtime.client();
        submit_all(&client, tasks);
        let verdicts = drain(&client);
        assert_eq!(verdicts.len(), tasks.len());
        drop(client);
        let run = runtime.finish();
        assert!(!run.crashed);
        assert_eq!(report_from_journal(&run.journal), run.report);
        shape(&run.journal)
    }

    proptest! {
        // Each case runs two full runtimes; keep the count modest.
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn any_shard_count_matches_the_single_shard_run(
            seed in 1u64..1_000_000,
            n_tasks in 4usize..24,
            shard_pick in 0usize..3,
        ) {
            quiet_injected_panics();
            let shards = [2usize, 4, 8][shard_pick];
            let tasks = roster(n_tasks);
            let single = run_with(1, seed, &tasks);
            let sharded = run_with(shards, seed, &tasks);
            prop_assert_eq!(single, sharded);
        }
    }
}
