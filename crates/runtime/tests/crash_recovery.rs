//! Chaos tests for the crash-recoverable runtime: coordinator kills at
//! seeded WAL points, double crashes, torn tails, recovery-from-any-prefix
//! properties, worker-crash supervision, task poisoning, and hung-worker
//! respawn with epoch-based stale-reply rejection.
//!
//! The golden-comparison tests rely on the determinism contract: fault
//! draws (lies *and* injected panics) are a pure function of
//! `(seed, task, replica)`, so an uninterrupted run and a crash+recover
//! run face identical adversity and must produce identical verdicts and
//! per-task job counts — only wall-clock stamps and cross-task
//! interleaving may differ.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::resilience::PoisonPolicy;
use smartred_core::strategy::{Iterative, Traditional};
use smartred_desim::journal::{Journal, RunEvent};
use smartred_runtime::{
    report_from_journal, Client, FaultProfile, FaultyWorker, JobAssignment, Payload, RecoveryError,
    Runtime, RuntimeConfig, RuntimeRun, SubmitOutcome, TaskVerdict, Worker,
};

/// Keep injected-panic backtraces out of the test output while letting
/// real panics (including test assertion failures) through.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected worker crash") || s.starts_with("poison"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn roster(n: usize) -> Vec<(u32, Payload)> {
    (0..n as u32)
        .map(|task| {
            (
                task,
                Payload::Synthetic {
                    answer: true,
                    work: Duration::ZERO,
                },
            )
        })
        .collect()
}

/// Lies and panics, no hangs: hang recovery is schedule-dependent, so the
/// golden-comparison tests keep deadlines generous and hang_rate zero.
fn chaos_profile() -> FaultProfile {
    FaultProfile {
        wrong_rate: 0.25,
        hang_rate: 0.0,
        crash_rate: 0.15,
        think: Duration::ZERO,
    }
}

fn chaos_cfg(wal: Option<PathBuf>) -> RuntimeConfig {
    RuntimeConfig {
        workers: None, // honor SMARTRED_THREADS (the CI chaos matrix axis)
        queue_cap: 512,
        max_active: 16,
        deadline: Duration::from_secs(30),
        poison: Some(PoisonPolicy { crash_limit: 2 }),
        wal,
        ..RuntimeConfig::default()
    }
}

const SEED: u64 = 0x5eed_cafe;
const MARGIN: usize = 3;

fn start_chaos(cfg: RuntimeConfig) -> Runtime {
    Runtime::start(
        cfg,
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
    )
}

fn submit_all(client: &Client, tasks: &[(u32, Payload)]) {
    for (task, payload) in tasks {
        match client.submit(payload.clone()) {
            SubmitOutcome::Shed => panic!("queue_cap admits the whole roster"),
            SubmitOutcome::Accepted { task: id } | SubmitOutcome::Queued { task: id } => {
                assert_eq!(id, *task, "submission order must assign roster ids");
            }
        }
    }
}

fn drain_verdicts(client: &Client) -> Vec<TaskVerdict> {
    let mut verdicts = Vec::new();
    while let Some(v) = client.recv_timeout(Duration::from_millis(400)) {
        verdicts.push(v);
    }
    verdicts
}

/// Runs the roster to completion (or to the configured chaos crash),
/// returning the run and every verdict the client actually received.
fn run_roster(cfg: RuntimeConfig, tasks: &[(u32, Payload)]) -> (RuntimeRun, Vec<TaskVerdict>) {
    let runtime = start_chaos(cfg);
    let client = runtime.client();
    submit_all(&client, tasks);
    let verdicts = drain_verdicts(&client);
    drop(client);
    (runtime.finish(), verdicts)
}

fn recover_chaos(
    cfg: RuntimeConfig,
    tasks: &[(u32, Payload)],
) -> (
    RuntimeRun,
    Vec<TaskVerdict>,
    smartred_runtime::RecoveryReport,
) {
    let (runtime, client, report) = Runtime::recover(
        cfg,
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
        tasks,
    )
    .expect("WAL recovery");
    let verdicts = drain_verdicts(&client);
    drop(client);
    (runtime.finish(), verdicts, report)
}

/// Schedule-independent run structure: `(task, kind, vote, jobs)` sorted
/// by task, where kind is 0 = verdict, 1 = capped, 2 = poisoned.
fn shape(journal: &Journal) -> Vec<(u32, u8, Option<bool>, u64)> {
    let mut jobs: HashMap<u32, u64> = HashMap::new();
    let mut out = Vec::new();
    for e in journal.events() {
        match e.event {
            RunEvent::JobDispatched { task, .. } => *jobs.entry(task).or_default() += 1,
            RunEvent::VerdictReached { task, value, .. } => out.push((task, 0, Some(value))),
            RunEvent::TaskCapped { task } => out.push((task, 1, None)),
            RunEvent::TaskPoisoned { task, .. } => out.push((task, 2, None)),
            _ => {}
        }
    }
    out.sort_unstable();
    out.into_iter()
        .map(|(task, kind, vote)| (task, kind, vote, jobs.get(&task).copied().unwrap_or(0)))
        .collect()
}

/// How many decision events (verdict, cap, poison) each task has.
fn decisions_per_task(journal: &Journal) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for e in journal.events() {
        if let RunEvent::VerdictReached { task, .. }
        | RunEvent::TaskCapped { task }
        | RunEvent::TaskPoisoned { task, .. } = e.event
        {
            *counts.entry(task).or_insert(0) += 1;
        }
    }
    counts
}

fn wal_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smartred-crash-recovery-{}-{name}.wal.jsonl",
        std::process::id()
    ))
}

/// The tentpole acceptance test: kill the coordinator at a sweep of
/// seeded WAL points; recovery must converge to a final journal whose
/// verdicts and per-task job counts are identical to the uninterrupted
/// golden run, every task must be decided exactly once across the
/// combined log, no verdict may be delivered twice, and the on-disk WAL
/// must equal the final journal byte for byte.
#[test]
fn coordinator_killed_at_seeded_points_recovers_to_the_golden_run() {
    quiet_injected_panics();
    let tasks = roster(10);
    let (golden, golden_verdicts) = run_roster(chaos_cfg(None), &tasks);
    assert!(!golden.crashed);
    assert_eq!(golden_verdicts.len(), tasks.len());
    assert_eq!(report_from_journal(&golden.journal), golden.report);
    let golden_shape = shape(&golden.journal);
    let events = golden.journal.events().len() as u64;

    let stride = (events / 6).max(1);
    let mut points: Vec<u64> = (1..events).step_by(stride as usize).collect();
    points.push(events - 1);
    for (round, crash_at) in points.into_iter().enumerate() {
        let wal = wal_path(&format!("sweep-{round}"));
        let mut cfg = chaos_cfg(Some(wal.clone()));
        cfg.crash_after_events = Some(crash_at);
        let runtime = start_chaos(cfg);
        let client = runtime.client();
        submit_all(&client, &tasks);
        let pre_crash_verdicts = drain_verdicts(&client);
        assert!(runtime.is_crashed(), "crash point {crash_at} must trip");
        drop(client);
        let crashed = runtime.finish();
        assert!(crashed.crashed);

        let (run, post_verdicts, rec) = recover_chaos(chaos_cfg(Some(wal.clone())), &tasks);
        assert!(!run.crashed);
        assert!(!rec.torn_tail, "event-boundary crashes leave no torn tail");
        assert_eq!(rec.events_replayed as u64, crash_at);
        assert_eq!(
            report_from_journal(&run.journal),
            run.report,
            "crash point {crash_at}: replayed report must equal the live one"
        );
        assert_eq!(
            shape(&run.journal),
            golden_shape,
            "crash point {crash_at}: recovered run diverged from golden"
        );
        for (task, count) in decisions_per_task(&run.journal) {
            assert_eq!(count, 1, "task {task} must be decided exactly once");
        }
        // Exactly-once delivery across the crash: no task's verdict
        // reaches a client twice. (A verdict logged right at the crash
        // boundary may reach *no* client — decisions are exactly-once,
        // delivery is at-most-once.)
        let before: HashSet<u32> = pre_crash_verdicts.iter().map(|v| v.task).collect();
        let after: HashSet<u32> = post_verdicts.iter().map(|v| v.task).collect();
        assert!(
            before.is_disjoint(&after),
            "crash point {crash_at}: tasks {:?} were delivered twice",
            before.intersection(&after).collect::<Vec<_>>()
        );
        // Durable WAL == final journal, byte for byte.
        let on_disk = std::fs::read_to_string(&wal).unwrap();
        assert_eq!(on_disk, run.journal.to_jsonl());
        let _ = std::fs::remove_file(&wal);
    }
}

/// A coordinator that crashes *again* during the recovered run is
/// recovered again, and the twice-interrupted run still converges to the
/// golden shape.
#[test]
fn double_crash_still_converges() {
    quiet_injected_panics();
    let tasks = roster(10);
    let (golden, _) = run_roster(chaos_cfg(None), &tasks);
    let golden_shape = shape(&golden.journal);
    let events = golden.journal.events().len() as u64;

    let wal = wal_path("double");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.crash_after_events = Some(events / 4);
    let (first, _) = run_roster(cfg, &tasks);
    assert!(first.crashed);

    // Second incarnation: dies again after a quarter of fresh appends.
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.crash_after_events = Some(events / 4);
    let (second, _, _) = recover_chaos(cfg, &tasks);
    assert!(second.crashed, "the second chaos point must trip too");

    let (run, _, rec) = recover_chaos(chaos_cfg(Some(wal.clone())), &tasks);
    assert!(!run.crashed);
    assert!(rec.events_replayed as u64 >= events / 2);
    assert_eq!(shape(&run.journal), golden_shape);
    for (task, count) in decisions_per_task(&run.journal) {
        assert_eq!(count, 1, "task {task} must be decided exactly once");
    }
    assert_eq!(report_from_journal(&run.journal), run.report);
    let _ = std::fs::remove_file(&wal);
}

/// A torn final record — the write that was in flight when the process
/// died — is detected, truncated away, and the run still converges.
#[test]
fn torn_wal_tail_is_truncated_and_recovered() {
    quiet_injected_panics();
    let tasks = roster(8);
    let (golden, _) = run_roster(chaos_cfg(None), &tasks);
    let golden_shape = shape(&golden.journal);
    let events = golden.journal.events().len() as u64;

    let wal = wal_path("torn");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.crash_after_events = Some(events / 3);
    let (crashed, _) = run_roster(cfg, &tasks);
    assert!(crashed.crashed);

    // Simulate the torn in-flight append a real kill would leave.
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    write!(file, "{{\"at\":999999,\"seq\":77,\"kind\":\"job_ret").unwrap();
    drop(file);

    let (run, _, rec) = recover_chaos(chaos_cfg(Some(wal.clone())), &tasks);
    assert!(rec.torn_tail, "the partial record must be seen as torn");
    assert_eq!(rec.events_replayed as u64, events / 3);
    assert!(!run.crashed);
    assert_eq!(shape(&run.journal), golden_shape);
    assert_eq!(report_from_journal(&run.journal), run.report);
    // The resume truncated the torn bytes: the healed file is valid JSONL.
    let on_disk = std::fs::read_to_string(&wal).unwrap();
    assert_eq!(on_disk, run.journal.to_jsonl());
    let _ = std::fs::remove_file(&wal);
}

/// Recovery error paths: no WAL configured, a roster missing an open
/// task's payload, and interior (non-tail) corruption are all reported,
/// never silently patched.
#[test]
fn recovery_rejects_missing_wal_roster_gaps_and_interior_corruption() {
    quiet_injected_panics();
    let tasks = roster(6);
    fn recover_err(cfg: RuntimeConfig, tasks: &[(u32, Payload)]) -> RecoveryError {
        match Runtime::recover(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |_| Box::new(FaultyWorker::new(SEED, chaos_profile())) as Box<dyn Worker>,
            tasks,
        ) {
            Ok(_) => panic!("recovery was expected to fail"),
            Err(err) => err,
        }
    }

    let err = recover_err(chaos_cfg(None), &tasks);
    assert!(matches!(err, RecoveryError::NoWal));

    let wal = wal_path("errors");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.crash_after_events = Some(40);
    let (crashed, _) = run_roster(cfg, &tasks);
    assert!(crashed.crashed);

    // Every open task's payload is missing from an empty roster.
    let err = recover_err(chaos_cfg(Some(wal.clone())), &[]);
    assert!(matches!(err, RecoveryError::Corrupt(_)), "got {err:?}");

    // Interior corruption (not the final record) is a hard parse error.
    let text = std::fs::read_to_string(&wal).unwrap();
    let second_line_start = text.find('\n').unwrap() + 1;
    let mut corrupted = text.clone();
    corrupted.replace_range(second_line_start..second_line_start + 1, "garbage ");
    std::fs::write(&wal, corrupted).unwrap();
    let err = recover_err(chaos_cfg(Some(wal.clone())), &tasks);
    assert!(matches!(err, RecoveryError::Parse(_)), "got {err:?}");
    let _ = std::fs::remove_file(&wal);
}

/// Worker panics are caught and healed in place: with a never-poisoning
/// policy, a heavily crash-prone pool still completes every task, one
/// restart per caught panic, and the journal folds to the live report.
#[test]
fn worker_crashes_are_supervised_and_every_task_completes() {
    quiet_injected_panics();
    let tasks = roster(30);
    let mut cfg = chaos_cfg(None);
    cfg.workers = Some(4);
    cfg.poison = Some(PoisonPolicy {
        crash_limit: u32::MAX,
    });
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3).unwrap()), |_| {
        Box::new(FaultyWorker::new(
            SEED,
            FaultProfile {
                wrong_rate: 0.0,
                hang_rate: 0.0,
                crash_rate: 0.4,
                think: Duration::ZERO,
            },
        ))
    });
    let client = runtime.client();
    submit_all(&client, &tasks);
    let verdicts = drain_verdicts(&client);
    drop(client);
    let run = runtime.finish();
    assert_eq!(run.report.tasks_completed, tasks.len());
    assert_eq!(run.report.tasks_poisoned, 0);
    assert_eq!(verdicts.len(), tasks.len());
    assert!(verdicts.iter().all(|v| v.vote == Some(true) && !v.poisoned));
    assert!(
        run.report.worker_crashes > 0,
        "a 40% crash rate must panic some workers"
    );
    assert_eq!(run.report.worker_crashes, run.report.worker_restarts);
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// A payload that kills every worker that touches it is *poisoned* after
/// the crash limit — a failed, vote-less, `poisoned` verdict — instead of
/// being reissued forever; healthy tasks on the same runtime are
/// untouched.
#[test]
fn poison_tasks_fail_fast_with_a_poisoned_verdict() {
    quiet_injected_panics();
    struct PanicsOnTaskZero;
    impl Worker for PanicsOnTaskZero {
        fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
            assert!(job.payload.execute(), "payload must still be executable");
            if job.task == 0 {
                panic!("poisoned payload");
            }
            Some((true, true))
        }
    }
    let mut cfg = chaos_cfg(None);
    cfg.workers = Some(2);
    cfg.poison = Some(PoisonPolicy { crash_limit: 3 });
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(3).unwrap()), |_| {
        Box::new(PanicsOnTaskZero)
    });
    let client = runtime.client();
    let tasks = roster(5);
    submit_all(&client, &tasks);
    let verdicts = drain_verdicts(&client);
    drop(client);
    let run = runtime.finish();

    assert_eq!(verdicts.len(), tasks.len(), "poisoned tasks still deliver");
    let poisoned: Vec<_> = verdicts.iter().filter(|v| v.poisoned).collect();
    assert_eq!(poisoned.len(), 1);
    assert_eq!(poisoned[0].task, 0);
    assert_eq!(poisoned[0].vote, None);
    assert_eq!(run.report.tasks_poisoned, 1);
    assert_eq!(run.report.tasks_completed, tasks.len() - 1);
    assert_eq!(
        run.report.worker_crashes, 3,
        "exactly crash_limit crashes before poisoning"
    );
    let has_poison_event = run.journal.events().iter().any(|e| {
        matches!(
            e.event,
            RunEvent::TaskPoisoned {
                task: 0,
                crashes: 3
            }
        )
    });
    assert!(has_poison_event);
    assert_eq!(report_from_journal(&run.journal), run.report);
}

/// Hung-worker supervision: a thread stuck inside `execute` is respawned,
/// its in-flight jobs are re-dispatched under a fresh epoch, and the old
/// thread's eventual late reply is rejected by epoch — never tallied, so
/// the task still sees exactly k votes.
#[test]
fn hung_worker_is_respawned_and_its_late_reply_is_rejected_by_epoch() {
    quiet_injected_panics();
    /// The first execution anywhere sleeps far past the hang threshold
    /// (then answers anyway — the late reply); all later executions,
    /// including the respawned incarnation's, answer promptly.
    struct SleepyOnce {
        slept: Arc<AtomicBool>,
    }
    impl Worker for SleepyOnce {
        fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
            if !self.slept.swap(true, Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(400));
            }
            Some((true, job.payload.execute()))
        }
    }
    let slept = Arc::new(AtomicBool::new(false));
    let k = 3;
    let mut cfg = chaos_cfg(None);
    cfg.workers = Some(1);
    cfg.hang_after = Some(Duration::from_millis(40));
    cfg.deadline = Duration::from_secs(30); // hang supervision, not timeout
    let runtime = Runtime::start(cfg, Traditional::new(KVotes::new(k).unwrap()), move |_| {
        Box::new(SleepyOnce {
            slept: slept.clone(),
        })
    });
    let client = runtime.client();
    submit_all(&client, &roster(1));
    let verdict = client.recv().expect("the task must still complete");
    assert_eq!(verdict.vote, Some(true));

    // Keep the runtime alive past the sleeper's wake-up so its late reply
    // is observed (and rejected) rather than lost at shutdown.
    std::thread::sleep(Duration::from_millis(500));
    match client.submit(Payload::Synthetic {
        answer: true,
        work: Duration::ZERO,
    }) {
        SubmitOutcome::Shed => panic!("queue has room"),
        SubmitOutcome::Accepted { .. } | SubmitOutcome::Queued { .. } => {}
    }
    assert_eq!(client.recv().expect("second verdict").vote, Some(true));
    drop(client);
    let run = runtime.finish();

    assert!(
        run.report.worker_restarts >= 1,
        "the stuck worker must be respawned"
    );
    assert_eq!(run.report.worker_crashes, 0, "a hang is not a panic");
    assert!(
        run.report.stale_replies >= 1,
        "the sleeper's late reply must be dropped as stale"
    );
    let epoch_advanced = run
        .journal
        .events()
        .iter()
        .any(|e| matches!(e.event, RunEvent::EpochAdvanced { task: 0, epoch: 1 }));
    assert!(epoch_advanced, "re-dispatch must bump the task epoch");
    let tallies = run
        .journal
        .events()
        .iter()
        .filter(|e| matches!(e.event, RunEvent::VoteTallied { task, .. } if task == 0))
        .count();
    assert_eq!(tallies, k, "exactly k votes despite the late duplicate");
    assert_eq!(report_from_journal(&run.journal), run.report);
}

mod audit_prefix_property {
    //! Satellite property: a crash at any WAL prefix with audits in
    //! flight recovers to the same audit verdicts and voided-verdict set
    //! as the uncrashed run.

    use super::*;
    use proptest::prelude::*;
    use smartred_core::audit::AuditPolicy;
    use std::sync::OnceLock;

    /// Audit chaos keeps the comparison schedule-independent: one task in
    /// flight at a time (retaliation re-tallies whatever else is open at
    /// conviction time, which is a scheduling artifact), a single worker,
    /// and equal spot/escalated rates (selection stays a pure function of
    /// `(audit_seed, task)` even when the crash lands between the first
    /// caught lie and the next selection draw).
    fn audit_cfg(wal: Option<PathBuf>) -> RuntimeConfig {
        let mut cfg = chaos_cfg(wal);
        cfg.workers = Some(1);
        cfg.max_active = 1;
        cfg.audit = AuditPolicy {
            spot_rate: 0.5,
            escalated_rate: 0.5,
            probation_audits: 0,
            strike_weight: 3,
        };
        cfg.audit_seed = SEED;
        cfg
    }

    /// Liars often enough that some verdicts are swung and voided.
    fn liar_profile() -> FaultProfile {
        FaultProfile {
            wrong_rate: 0.4,
            hang_rate: 0.0,
            crash_rate: 0.1,
            think: Duration::ZERO,
        }
    }

    fn start_audit_chaos(cfg: RuntimeConfig) -> Runtime {
        Runtime::start(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |_| Box::new(FaultyWorker::new(SEED, liar_profile())),
        )
    }

    /// Schedule- and crash-independent audit structure: per decided task,
    /// the decision kind and vote, whether any audit touched/convicted it,
    /// and how many of its verdicts were voided. Raw audit *event counts*
    /// are excluded on purpose: a crash inside an audit group makes
    /// recovery re-run the whole group (same outcome, extra
    /// `AuditScheduled`/`AuditFailed` records), and worker ids are
    /// scheduling artifacts.
    fn audit_shape(journal: &Journal) -> Vec<(u32, u8, Option<bool>, bool, bool, u32)> {
        let mut audited: HashSet<u32> = HashSet::new();
        let mut convicted: HashSet<u32> = HashSet::new();
        let mut voids: HashMap<u32, u32> = HashMap::new();
        let mut out = Vec::new();
        for e in journal.events() {
            match e.event {
                RunEvent::AuditScheduled { task } => {
                    audited.insert(task);
                }
                RunEvent::AuditFailed { task, .. } => {
                    convicted.insert(task);
                }
                RunEvent::VerdictVoided { task } => *voids.entry(task).or_default() += 1,
                RunEvent::VerdictReached { task, value, .. } => out.push((task, 0u8, Some(value))),
                RunEvent::TaskCapped { task } => out.push((task, 1, None)),
                RunEvent::TaskPoisoned { task, .. } => out.push((task, 2, None)),
                _ => {}
            }
        }
        out.sort_unstable();
        out.into_iter()
            .map(|(task, kind, vote)| {
                (
                    task,
                    kind,
                    vote,
                    audited.contains(&task),
                    convicted.contains(&task),
                    voids.get(&task).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    struct GoldenFixture {
        tasks: Vec<(u32, Payload)>,
        shape: Vec<(u32, u8, Option<bool>, bool, bool, u32)>,
        events: u64,
    }

    fn golden() -> &'static GoldenFixture {
        static GOLDEN: OnceLock<GoldenFixture> = OnceLock::new();
        GOLDEN.get_or_init(|| {
            quiet_injected_panics();
            let tasks = roster(12);
            let runtime = start_audit_chaos(audit_cfg(None));
            let client = runtime.client();
            submit_all(&client, &tasks);
            let verdicts = drain_verdicts(&client);
            drop(client);
            let run = runtime.finish();
            assert!(!run.crashed);
            assert_eq!(verdicts.len(), tasks.len());
            // The fixture only proves the property if audits actually
            // fired and voided something.
            assert!(run.report.audits > 0, "no audits in the golden run");
            assert!(
                run.report.verdicts_voided > 0,
                "no voided verdicts in the golden run"
            );
            // One task in flight at a time leaves retaliation nothing to
            // re-tally (cross-task re-tallies are covered by the DCA and
            // volunteer audit tests).
            assert_eq!(run.report.tasks_retallied, 0);
            assert_eq!(report_from_journal(&run.journal), run.report);
            GoldenFixture {
                tasks,
                shape: audit_shape(&run.journal),
                events: run.journal.events().len() as u64,
            }
        })
    }

    proptest! {
        // Each case is a full crash + recovery run; keep the count modest.
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn crash_at_any_prefix_preserves_audit_verdicts(crash_seed in 1u64..10_000) {
            let fixture = golden();
            let crash_at = 1 + crash_seed % (fixture.events - 1);
            let wal = wal_path(&format!("audit-prefix-{crash_at}"));
            let mut cfg = audit_cfg(Some(wal.clone()));
            cfg.crash_after_events = Some(crash_at);
            let runtime = start_audit_chaos(cfg);
            let client = runtime.client();
            submit_all(&client, &fixture.tasks);
            drain_verdicts(&client);
            drop(client);
            let crashed = runtime.finish();
            prop_assert!(crashed.crashed);

            let (runtime, client, _) = Runtime::recover(
                audit_cfg(Some(wal.clone())),
                Iterative::new(VoteMargin::new(MARGIN).unwrap()),
                |_| Box::new(FaultyWorker::new(SEED, liar_profile())),
                &fixture.tasks,
            )
            .expect("WAL recovery");
            drain_verdicts(&client);
            drop(client);
            let run = runtime.finish();
            prop_assert!(!run.crashed);
            prop_assert_eq!(audit_shape(&run.journal), fixture.shape.clone());
            for (task, count) in decisions_per_task(&run.journal) {
                prop_assert_eq!(count, 1, "task {} decided more than once", task);
            }
            prop_assert_eq!(report_from_journal(&run.journal), run.report.clone());
            let on_disk = std::fs::read_to_string(&wal).unwrap();
            prop_assert_eq!(on_disk, run.journal.to_jsonl());
            let _ = std::fs::remove_file(&wal);
        }
    }
}

mod prefix_property {
    //! Property test: recovery from *any* event-stream prefix — not just
    //! the swept points — yields a coordinator whose continued run matches
    //! the golden shape and decides every task exactly once.

    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    struct GoldenFixture {
        tasks: Vec<(u32, Payload)>,
        shape: Vec<(u32, u8, Option<bool>, u64)>,
        events: u64,
    }

    fn golden() -> &'static GoldenFixture {
        static GOLDEN: OnceLock<GoldenFixture> = OnceLock::new();
        GOLDEN.get_or_init(|| {
            quiet_injected_panics();
            let tasks = roster(8);
            let (run, _) = run_roster(chaos_cfg(None), &tasks);
            assert!(!run.crashed);
            GoldenFixture {
                tasks,
                shape: shape(&run.journal),
                events: run.journal.events().len() as u64,
            }
        })
    }

    proptest! {
        // 12 cases: each is a full crash + recovery run, so this is the
        // most expensive property in the workspace.
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn recovery_from_any_prefix_converges_to_golden(crash_seed in 1u64..10_000) {
            let fixture = golden();
            let crash_at = 1 + crash_seed % (fixture.events - 1);
            let wal = wal_path(&format!("prefix-{crash_at}"));
            let mut cfg = chaos_cfg(Some(wal.clone()));
            cfg.crash_after_events = Some(crash_at);
            let (crashed, _) = run_roster(cfg, &fixture.tasks);
            prop_assert!(crashed.crashed);

            let (run, _, _) = recover_chaos(chaos_cfg(Some(wal.clone())), &fixture.tasks);
            prop_assert!(!run.crashed);
            prop_assert_eq!(shape(&run.journal), fixture.shape.clone());
            for (task, count) in decisions_per_task(&run.journal) {
                prop_assert_eq!(count, 1, "task {} decided more than once", task);
            }
            prop_assert_eq!(report_from_journal(&run.journal), run.report.clone());
            let _ = std::fs::remove_file(&wal);
        }
    }
}

mod sharded_crash_matrix {
    //! Crash-point matrix for the sharded runtime: kill all N=4 shard
    //! coordinators at 20/50/80% of each shard's golden event count —
    //! with torn tails injected on *two different* shard WAL segments
    //! simultaneously — and require parallel recovery to converge to the
    //! golden verdicts with exactly-once decisions per shard.

    use super::*;
    use smartred_core::execution::shard_of;
    use smartred_runtime::{ShardedClient, ShardedConfig, ShardedRun, ShardedRuntime};

    /// Shard count under test: the CI `shard-chaos` matrix axis
    /// (`SMARTRED_SHARDS` ∈ {1, 4}), defaulting to 4.
    fn shard_count() -> usize {
        std::env::var("SMARTRED_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(4)
    }

    fn sharded_chaos_cfg(wal_dir: Option<PathBuf>) -> ShardedConfig {
        ShardedConfig {
            base: chaos_cfg(None),
            shards: shard_count(),
            wal_dir,
            admission_cap: 512,
            crash_after: None,
        }
    }

    fn start_sharded(cfg: ShardedConfig) -> ShardedRuntime {
        ShardedRuntime::start(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
        )
    }

    fn drain_sharded(client: &ShardedClient) -> Vec<TaskVerdict> {
        let mut verdicts = Vec::new();
        while let Some(v) = client.recv_timeout(Duration::from_millis(400)) {
            verdicts.push(v);
        }
        verdicts
    }

    fn run_sharded(cfg: ShardedConfig, tasks: &[(u32, Payload)]) -> (ShardedRun, Vec<TaskVerdict>) {
        let runtime = start_sharded(cfg);
        let client = runtime.client();
        for (task, payload) in tasks {
            match client.submit(payload.clone()) {
                SubmitOutcome::Shed => panic!("admission_cap admits the whole roster"),
                SubmitOutcome::Accepted { task: id } | SubmitOutcome::Queued { task: id } => {
                    assert_eq!(id, *task, "submission order must assign roster ids");
                }
            }
        }
        let verdicts = drain_sharded(&client);
        drop(client);
        (runtime.finish(), verdicts)
    }

    /// WAL directories live under `target/tmp` so a failing CI run can
    /// upload the per-shard segments as artifacts (they are removed on
    /// success).
    fn wal_dir(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("smartred-sharded-crash-{name}"))
    }

    /// The matrix itself. Each round kills every shard coordinator at
    /// `pct`% of that shard's golden event count, injects torn tails on
    /// the WAL segments of shards 0 and 2 simultaneously, and recovers
    /// all shards in parallel.
    #[test]
    fn shards_killed_at_matrix_points_recover_to_the_golden_run() {
        quiet_injected_panics();
        let shards = shard_count();
        // With N=1 both torn tails land on the only segment; the torn
        // set still describes which *segments* end mid-record.
        let torn_shards: HashSet<usize> = [0, 2 % shards].into_iter().collect();
        let tasks = roster(24);
        let (golden, golden_verdicts) = run_sharded(sharded_chaos_cfg(None), &tasks);
        assert!(!golden.crashed);
        assert_eq!(golden_verdicts.len(), tasks.len());
        let golden_shape = shape(&golden.journal);
        let per_shard_events: Vec<u64> = golden
            .shards
            .iter()
            .map(|s| s.journal.events().len() as u64)
            .collect();
        assert!(per_shard_events.iter().all(|&n| n > 1), "every shard works");

        for pct in [20u64, 50, 80] {
            let dir = wal_dir(&format!("pct-{pct}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let mut cfg = sharded_chaos_cfg(Some(dir.clone()));
            cfg.crash_after = Some(
                per_shard_events
                    .iter()
                    .map(|&n| Some((n * pct / 100).max(1)))
                    .collect(),
            );
            let (crashed, pre_verdicts) = run_sharded(cfg, &tasks);
            assert!(crashed.crashed, "pct {pct}: at least one shard must trip");

            // A real kill tears whatever appends were in flight — on two
            // *different* shard segments at once.
            use std::io::Write;
            for &torn in &torn_shards {
                let path = ShardedConfig::wal_segment(&dir, torn);
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .unwrap();
                write!(file, "{{\"at\":999999,\"seq\":77,\"kind\":\"job_ret").unwrap();
            }

            let (runtime, client, reports) = ShardedRuntime::recover(
                sharded_chaos_cfg(Some(dir.clone())),
                Iterative::new(VoteMargin::new(MARGIN).unwrap()),
                |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
                &tasks,
            )
            .expect("parallel shard recovery");
            let post_verdicts = drain_sharded(&client);
            drop(client);
            let run = runtime.finish();
            assert!(!run.crashed);

            assert_eq!(reports.len(), shards);
            for (k, rec) in reports.iter().enumerate() {
                assert_eq!(
                    rec.torn_tail,
                    torn_shards.contains(&k),
                    "pct {pct}: only segments {torn_shards:?} were torn, shard {k} disagrees"
                );
            }

            // Convergence: the merged recovered journal carries the
            // golden verdicts and per-task job counts.
            assert_eq!(
                shape(&run.journal),
                golden_shape,
                "pct {pct}: recovered run diverged from golden"
            );
            assert_eq!(report_from_journal(&run.journal), run.report);

            // Exactly-once decisions, globally and per shard — and every
            // decision lives in its owning shard's journal.
            for (task, count) in decisions_per_task(&run.journal) {
                assert_eq!(count, 1, "pct {pct}: task {task} decided more than once");
            }
            for (k, shard_run) in run.shards.iter().enumerate() {
                for (task, count) in decisions_per_task(&shard_run.journal) {
                    assert_eq!(shard_of(task, shards), k, "decision routed to wrong shard");
                    assert_eq!(count, 1, "pct {pct}: shard {k} re-decided task {task}");
                }
            }

            // At-most-once delivery across the crash: no verdict reaches
            // a client twice (a verdict logged right at a crash boundary
            // may reach no client at all).
            let before: HashSet<u32> = pre_verdicts.iter().map(|v| v.task).collect();
            let after: HashSet<u32> = post_verdicts.iter().map(|v| v.task).collect();
            assert!(
                before.is_disjoint(&after),
                "pct {pct}: a verdict was delivered both before and after the crash"
            );

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
