//! Storage-fault chaos for the durable runtime: injected disk failures
//! (failed fsync, short writes, power loss mid-append, silent bit rot)
//! under the seeded [`DiskFaultPlan`], plus the checkpoint/compaction
//! matrix — snapshot + WAL-suffix recovery must produce reports
//! bit-identical to a full-history replay at 1 and 4 shards.
//!
//! WAL segments and snapshots live under `target/tmp` so a failing CI
//! `disk-chaos` job can upload them as artifacts; they are removed on
//! success.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use smartred_core::params::VoteMargin;
use smartred_core::resilience::PoisonPolicy;
use smartred_core::strategy::Iterative;
use smartred_desim::disk::DiskFaultPlan;
use smartred_desim::journal::{Journal, RunEvent};
use smartred_runtime::{
    checkpoint_path, report_from_journal, Client, FaultProfile, FaultyWorker, Payload,
    RecoveryError, Runtime, RuntimeConfig, RuntimeRun, SubmitOutcome, TaskVerdict, Worker,
};

const SEED: u64 = 0xd15c_cafe;
const MARGIN: usize = 3;

/// Keep injected-panic backtraces out of the test output while letting
/// real panics (including test assertion failures) through.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected worker crash"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn roster(n: usize) -> Vec<(u32, Payload)> {
    (0..n as u32)
        .map(|task| {
            (
                task,
                Payload::Synthetic {
                    answer: true,
                    work: Duration::ZERO,
                },
            )
        })
        .collect()
}

/// Lies and panics, no hangs — the same schedule-independent chaos the
/// crash-recovery suite uses, so fault draws line up across runs.
fn chaos_profile() -> FaultProfile {
    FaultProfile {
        wrong_rate: 0.25,
        hang_rate: 0.0,
        crash_rate: 0.15,
        think: Duration::ZERO,
    }
}

fn chaos_cfg(wal: Option<PathBuf>) -> RuntimeConfig {
    RuntimeConfig {
        workers: None, // honor SMARTRED_THREADS (the CI disk-chaos matrix axis)
        queue_cap: 512,
        max_active: 16,
        deadline: Duration::from_secs(30),
        poison: Some(PoisonPolicy { crash_limit: 2 }),
        wal,
        ..RuntimeConfig::default()
    }
}

fn start_chaos(cfg: RuntimeConfig) -> Runtime {
    Runtime::start(
        cfg,
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
    )
}

fn submit_all(client: &Client, tasks: &[(u32, Payload)]) {
    for (task, payload) in tasks {
        match client.submit(payload.clone()) {
            SubmitOutcome::Shed => panic!("queue_cap admits the whole roster"),
            SubmitOutcome::Accepted { task: id } | SubmitOutcome::Queued { task: id } => {
                assert_eq!(id, *task, "submission order must assign roster ids");
            }
        }
    }
}

fn drain_verdicts(client: &Client) -> Vec<TaskVerdict> {
    let mut verdicts = Vec::new();
    while let Some(v) = client.recv_timeout(Duration::from_millis(400)) {
        verdicts.push(v);
    }
    verdicts
}

fn run_roster(cfg: RuntimeConfig, tasks: &[(u32, Payload)]) -> (RuntimeRun, Vec<TaskVerdict>) {
    let runtime = start_chaos(cfg);
    let client = runtime.client();
    submit_all(&client, tasks);
    let verdicts = drain_verdicts(&client);
    drop(client);
    (runtime.finish(), verdicts)
}

fn recover_chaos(
    cfg: RuntimeConfig,
    tasks: &[(u32, Payload)],
) -> (
    RuntimeRun,
    Vec<TaskVerdict>,
    smartred_runtime::RecoveryReport,
) {
    let (runtime, client, report) = Runtime::recover(
        cfg,
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
        tasks,
    )
    .expect("WAL recovery");
    let verdicts = drain_verdicts(&client);
    drop(client);
    (runtime.finish(), verdicts, report)
}

/// `task → vote` of every delivered verdict, asserting no duplicates.
fn votes(verdicts: &[TaskVerdict]) -> HashMap<u32, Option<bool>> {
    let mut map = HashMap::new();
    for v in verdicts {
        assert!(
            map.insert(v.task, v.vote).is_none(),
            "task {} delivered twice",
            v.task
        );
    }
    map
}

/// Exactly-once delivery and golden agreement across a crash: the two
/// delivery sets are disjoint, every delivered vote matches the golden
/// run, and at most `slack` verdicts were lost to the crash boundary (a
/// decision that became durable in the instant the coordinator died is
/// never re-delivered — decisions are exactly-once, delivery at-most-once).
fn assert_delivery(
    ctx: &str,
    pre: &[TaskVerdict],
    post: &[TaskVerdict],
    golden: &HashMap<u32, Option<bool>>,
    slack: usize,
) {
    let pre = votes(pre);
    let post = votes(post);
    for task in pre.keys() {
        assert!(
            !post.contains_key(task),
            "{ctx}: task {task} delivered on both sides of the crash"
        );
    }
    let mut all = pre;
    all.extend(post);
    for (task, vote) in &all {
        assert_eq!(
            golden.get(task),
            Some(vote),
            "{ctx}: task {task} diverged from the golden run"
        );
    }
    assert!(
        all.len() + slack >= golden.len(),
        "{ctx}: {} verdicts delivered, expected at least {}",
        all.len(),
        golden.len() - slack
    );
}

/// Schedule-independent run structure: `(task, kind, vote)` sorted by
/// task, where kind is 0 = verdict, 1 = capped, 2 = poisoned.
fn shape(journal: &Journal) -> Vec<(u32, u8, Option<bool>)> {
    let mut out = Vec::new();
    for e in journal.events() {
        match e.event {
            RunEvent::VerdictReached { task, value, .. } => out.push((task, 0, Some(value))),
            RunEvent::TaskCapped { task } => out.push((task, 1, None)),
            RunEvent::TaskPoisoned { task, .. } => out.push((task, 2, None)),
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

fn wal_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "smartred-disk-chaos-{}-{name}.wal.jsonl",
        std::process::id()
    ))
}

fn cleanup(wal: &PathBuf) {
    let _ = std::fs::remove_file(wal);
    let _ = std::fs::remove_file(checkpoint_path(wal));
    let mut quarantined = wal.clone().into_os_string();
    quarantined.push(".quarantined");
    let _ = std::fs::remove_file(PathBuf::from(quarantined));
}

/// The disk-fault half of the matrix: each injected storage failure must
/// crash the coordinator (never limp on over a disk it cannot trust),
/// and recovery on a healthy disk must converge to the golden verdicts
/// with every delivery exactly-once across the crash.
#[test]
fn injected_disk_faults_crash_the_coordinator_and_recovery_converges() {
    quiet_injected_panics();
    let tasks = roster(8);
    let (golden, golden_verdicts) = run_roster(chaos_cfg(None), &tasks);
    assert!(!golden.crashed);
    let golden_votes = votes(&golden_verdicts);
    assert_eq!(golden_votes.len(), tasks.len());
    let golden_shape = shape(&golden.journal);

    let plans: Vec<(&str, DiskFaultPlan)> = vec![
        (
            "fsync-early",
            DiskFaultPlan {
                seed: SEED,
                fail_fsync_at: Some(3),
                ..DiskFaultPlan::default()
            },
        ),
        (
            "fsync-late",
            DiskFaultPlan {
                seed: SEED ^ 1,
                fail_fsync_at: Some(25),
                ..DiskFaultPlan::default()
            },
        ),
        (
            "short-write",
            DiskFaultPlan {
                seed: SEED ^ 2,
                short_write_at: Some(12),
                ..DiskFaultPlan::default()
            },
        ),
        (
            "power-loss",
            DiskFaultPlan {
                seed: SEED ^ 3,
                crash_after_writes: Some(18),
                ..DiskFaultPlan::default()
            },
        ),
    ];
    for (name, plan) in plans {
        let wal = wal_path(name);
        let mut cfg = chaos_cfg(Some(wal.clone()));
        cfg.disk_faults = Some(plan);
        let (crashed, pre_verdicts) = run_roster(cfg, &tasks);
        assert!(crashed.crashed, "{name}: the injected fault must crash");

        // Recovery reopens the real (now healthy) file; torn iff the
        // fault persisted a partial final record without its newline.
        let bytes = std::fs::read(&wal).unwrap();
        let expect_torn = !bytes.is_empty() && !bytes.ends_with(b"\n");
        let (run, post_verdicts, rec) = recover_chaos(chaos_cfg(Some(wal.clone())), &tasks);
        assert!(!run.crashed, "{name}: recovery must complete");
        assert_eq!(rec.torn_tail, expect_torn, "{name}: torn-tail detection");
        assert_eq!(report_from_journal(&run.journal), run.report);

        // The recovered journal carries the full history, so the strong
        // convergence check applies: every task decided, golden outcome.
        assert_eq!(
            shape(&run.journal),
            golden_shape,
            "{name}: recovered run diverged from golden"
        );
        assert_delivery(name, &pre_verdicts, &post_verdicts, &golden_votes, 1);
        cleanup(&wal);
    }
}

/// Silent single-bit rot in a checksummed WAL is *detected* at recovery —
/// named with its byte offset (and seq when sniffable), never parsed as a
/// different valid event — and the damaged segment is quarantined so a
/// blind retry cannot silently re-trip.
#[test]
fn bit_rot_in_a_checksummed_wal_is_refused_and_quarantined() {
    quiet_injected_panics();
    let tasks = roster(8);
    let wal = wal_path("bit-rot");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.wal_checksum = true;
    // Flip one seeded bit after the 10th write: the rot lands strictly
    // before later appends, so the damaged record is newline-terminated —
    // in-place corruption, not a torn tail.
    cfg.disk_faults = Some(DiskFaultPlan {
        seed: SEED ^ 4,
        flip_bit_after: Some(10),
        ..DiskFaultPlan::default()
    });
    let (run, verdicts) = run_roster(cfg, &tasks);
    assert!(!run.crashed, "bit rot is silent — the run completes");
    assert_eq!(verdicts.len(), tasks.len());

    let err = match Runtime::recover(
        chaos_cfg(Some(wal.clone())),
        Iterative::new(VoteMargin::new(MARGIN).unwrap()),
        |_| Box::new(FaultyWorker::new(SEED, chaos_profile())) as Box<dyn Worker>,
        &tasks,
    ) {
        Ok(_) => panic!("corrupt WAL must not recover"),
        Err(err) => err,
    };
    let RecoveryError::Parse(parse) = &err else {
        panic!("expected a parse refusal, got {err:?}");
    };
    let shown = parse.to_string();
    assert!(shown.contains("byte"), "no byte offset in: {shown}");

    // The segment was quarantined for forensics; the original path is
    // gone, so a retry fails on the missing file instead of re-tripping.
    let mut quarantined = wal.clone().into_os_string();
    quarantined.push(".quarantined");
    let quarantined = PathBuf::from(quarantined);
    assert!(quarantined.exists(), "damaged segment must be quarantined");
    assert!(!wal.exists());
    cleanup(&wal);
}

/// Without checksums the WAL format is unchanged — no `crc` field — and
/// a crashed unchecksummed run recovers with the on-disk segment equal
/// to the final journal byte for byte, pinning the legacy format.
#[test]
fn legacy_unchecksummed_wal_recovers_byte_identically() {
    quiet_injected_panics();
    let tasks = roster(6);
    let wal = wal_path("legacy");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.crash_after_events = Some(30);
    let (crashed, _) = run_roster(cfg, &tasks);
    assert!(crashed.crashed);
    let text = std::fs::read_to_string(&wal).unwrap();
    assert!(
        !text.contains("\"crc\":"),
        "checksums are opt-in; the default format must not change"
    );

    let (run, _, _) = recover_chaos(chaos_cfg(Some(wal.clone())), &tasks);
    assert!(!run.crashed);
    let on_disk = std::fs::read_to_string(&wal).unwrap();
    assert_eq!(on_disk, run.journal.to_jsonl());
    cleanup(&wal);
}

/// A checksummed run survives the same crash sweep: every on-disk line
/// carries its `crc` trailer, and recovery converges.
#[test]
fn checksummed_wal_round_trips_through_crash_and_recovery() {
    quiet_injected_panics();
    let tasks = roster(6);
    let wal = wal_path("checksummed");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.wal_checksum = true;
    cfg.crash_after_events = Some(30);
    let (crashed, pre) = run_roster(cfg, &tasks);
    assert!(crashed.crashed);
    let text = std::fs::read_to_string(&wal).unwrap();
    assert!(text.lines().all(|l| l.contains("\"crc\":\"")));

    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.wal_checksum = true;
    let (run, post, rec) = recover_chaos(cfg, &tasks);
    assert!(!run.crashed);
    assert!(!rec.torn_tail);
    assert_eq!(report_from_journal(&run.journal), run.report);
    let decided = shape(&run.journal);
    assert_eq!(decided.len(), tasks.len(), "every task must be decided");
    // Capped and poisoned tasks deliver vote-less verdicts.
    let golden: HashMap<u32, Option<bool>> = decided
        .iter()
        .map(|&(task, _, vote)| (task, vote))
        .collect();
    assert_delivery("checksummed", &pre, &post, &golden, 1);
    let on_disk = std::fs::read_to_string(&wal).unwrap();
    assert!(on_disk.lines().all(|l| l.contains("\"crc\":\"")));
    cleanup(&wal);
}

mod checkpoint_matrix {
    //! The checkpoint/compaction half of the tentpole: snapshot + suffix
    //! recovery must produce a starting report bit-identical to a full
    //! replay of the crashed run's complete in-memory history, at 1 and
    //! 4 shards, across a sweep of crash points.

    use super::*;
    use smartred_runtime::{ShardedClient, ShardedConfig, ShardedRuntime};

    const EVERY: u64 = 20;

    fn ckpt_cfg(wal: Option<PathBuf>) -> RuntimeConfig {
        let mut cfg = chaos_cfg(wal);
        cfg.checkpoint_every = Some(EVERY);
        cfg
    }

    /// Three submission bursts with a drained quiescent window between
    /// them — the idle gaps where the coordinator takes checkpoints.
    fn run_bursts(runtime: &Runtime, tasks: &[(u32, Payload)]) -> Vec<TaskVerdict> {
        let client = runtime.client();
        let mut verdicts = Vec::new();
        for burst in tasks.chunks(tasks.len().div_ceil(3)) {
            submit_all(&client, burst);
            verdicts.extend(drain_verdicts(&client));
            if runtime.is_crashed() {
                break;
            }
        }
        verdicts
    }

    /// Kill a checkpointing coordinator across a sweep of points; each
    /// recovery's starting report must equal a full-history fold of the
    /// crashed run's in-memory journal (which is never compacted), and
    /// the continued run must converge to the golden verdicts.
    #[test]
    fn snapshot_plus_suffix_equals_full_replay_across_the_crash_sweep() {
        quiet_injected_panics();
        let tasks = roster(12);
        let (golden, golden_verdicts) = run_roster(chaos_cfg(None), &tasks);
        let golden_votes = votes(&golden_verdicts);
        let events = golden.journal.events().len() as u64;

        let mut saw_checkpointed_recovery = false;
        for pct in [30u64, 60, 90] {
            let crash_at = (events * pct / 100).max(1);
            let wal = wal_path(&format!("ckpt-sweep-{pct}"));
            let mut cfg = ckpt_cfg(Some(wal.clone()));
            cfg.crash_after_events = Some(crash_at);
            let runtime = start_chaos(cfg);
            let pre_verdicts = run_bursts(&runtime, &tasks);
            assert!(runtime.is_crashed(), "pct {pct}: crash point must trip");
            let crashed = runtime.finish();
            assert!(crashed.crashed);

            let (run, post_verdicts, rec) = recover_chaos(ckpt_cfg(Some(wal.clone())), &tasks);
            assert!(!run.crashed);
            // The acceptance bar: snapshot + suffix == full replay, bit
            // for bit — the crashed run's in-memory journal holds the
            // complete history even though its WAL was compacted.
            assert_eq!(
                rec.report,
                report_from_journal(&crashed.journal),
                "pct {pct}: snapshot+suffix fold diverged from full replay"
            );
            if rec.checkpoint_events > 0 {
                saw_checkpointed_recovery = true;
                assert!(
                    (rec.events_replayed as u64) < crash_at,
                    "pct {pct}: a checkpoint must bound the replayed suffix"
                );
            }

            assert_delivery(
                &format!("pct {pct}"),
                &pre_verdicts,
                &post_verdicts,
                &golden_votes,
                1,
            );
            cleanup(&wal);
        }
        assert!(
            saw_checkpointed_recovery,
            "the sweep never exercised a snapshot+suffix recovery — \
             lower EVERY or move the crash points"
        );
    }

    /// An uninterrupted checkpointing run compacts its WAL: the final
    /// on-disk segment is a checkpoint seal plus a bounded suffix, far
    /// shorter than the full history, and recovery from it self-heals.
    #[test]
    fn compaction_bounds_the_on_disk_segment() {
        quiet_injected_panics();
        let tasks = roster(12);
        let wal = wal_path("compaction");
        let runtime = start_chaos(ckpt_cfg(Some(wal.clone())));
        let verdicts = run_bursts(&runtime, &tasks);
        assert_eq!(votes(&verdicts).len(), tasks.len());
        let run = runtime.finish();
        assert!(!run.crashed);

        let text = std::fs::read_to_string(&wal).unwrap();
        let on_disk_lines = text.lines().count();
        assert!(
            on_disk_lines < run.journal.events().len(),
            "no compaction: {on_disk_lines} on-disk lines vs {} events",
            run.journal.events().len()
        );
        assert!(
            text.starts_with("{\"at\":")
                && text.lines().next().unwrap().contains("checkpoint_taken"),
            "a compacted segment must begin with its checkpoint seal"
        );
        assert!(checkpoint_path(&wal).exists());
        cleanup(&wal);
    }

    /// The empty-suffix crash window — died after truncating the WAL but
    /// before sealing it — heals from the snapshot alone: recovery
    /// replays nothing, re-seals the segment, and re-delivers nothing.
    #[test]
    fn empty_suffix_window_heals_from_the_snapshot_alone() {
        quiet_injected_panics();
        let tasks = roster(12);
        let wal = wal_path("heal");
        let runtime = start_chaos(ckpt_cfg(Some(wal.clone())));
        let verdicts = run_bursts(&runtime, &tasks);
        assert_eq!(votes(&verdicts).len(), tasks.len());
        let run = runtime.finish();
        assert!(!run.crashed);
        let snapshot_decided: usize = {
            // Count decisions sealed by the last checkpoint: all of them,
            // since the final drain left a quiescent window.
            tasks.len()
        };

        // Simulate the crash window: the truncate landed, the seal never
        // did.
        std::fs::write(&wal, b"").unwrap();
        let (run, post_verdicts, rec) = recover_chaos(ckpt_cfg(Some(wal.clone())), &tasks);
        assert!(!run.crashed);
        assert_eq!(rec.events_replayed, 0, "nothing to replay after a heal");
        assert!(rec.checkpoint_events > 0);
        assert_eq!(rec.tasks_decided, snapshot_decided);
        assert_eq!(rec.tasks_resumed, 0);
        assert_eq!(rec.tasks_seeded, 0, "decided tasks must not re-run");
        assert!(
            post_verdicts.is_empty(),
            "healing must not re-deliver verdicts"
        );
        // The heal re-sealed the segment.
        let text = std::fs::read_to_string(&wal).unwrap();
        assert!(text.lines().next().unwrap().contains("checkpoint_taken"));
        cleanup(&wal);
    }

    /// A WAL segment that starts mid-stream with no checkpoint seal (a
    /// stale snapshot cannot vouch for it) is corrupt, not recoverable.
    #[test]
    fn mid_stream_segment_without_a_seal_is_refused() {
        quiet_injected_panics();
        let tasks = roster(6);
        let wal = wal_path("mid-stream");
        let mut cfg = chaos_cfg(Some(wal.clone()));
        cfg.crash_after_events = Some(30);
        let (crashed, _) = run_roster(cfg, &tasks);
        assert!(crashed.crashed);

        // Drop the first record: the segment now starts at seq 1.
        let text = std::fs::read_to_string(&wal).unwrap();
        let rest = &text[text.find('\n').unwrap() + 1..];
        std::fs::write(&wal, rest).unwrap();
        let err = match Runtime::recover(
            chaos_cfg(Some(wal.clone())),
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |_| Box::new(FaultyWorker::new(SEED, chaos_profile())) as Box<dyn Worker>,
            &tasks,
        ) {
            Ok(_) => panic!("mid-stream segment must not recover"),
            Err(err) => err,
        };
        assert!(
            matches!(&err, RecoveryError::Corrupt(msg) if msg.contains("mid-stream")),
            "got {err:?}"
        );
        cleanup(&wal);
    }

    /// The sharded checkpoint matrix: at 1 and 4 shards, every shard
    /// checkpoints its own segment, crashed shards recover snapshot +
    /// suffix, and each per-shard starting report is bit-identical to a
    /// full replay of that shard's complete history.
    #[test]
    fn sharded_checkpoint_recovery_is_bit_identical_at_one_and_four_shards() {
        quiet_injected_panics();
        let tasks = roster(16);
        for shards in [1usize, 4] {
            let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
                "smartred-disk-chaos-{}-sharded-{shards}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let cfg =
                |wal_dir: Option<PathBuf>, crash_after: Option<Vec<Option<u64>>>| ShardedConfig {
                    base: ckpt_cfg(None),
                    shards,
                    wal_dir,
                    admission_cap: 512,
                    crash_after,
                };

            // Golden sharded run under the same burst structure: its
            // per-shard event counts place the crash points past the
            // first quiescent window, so checkpoints are exercised.
            let (golden, golden_verdicts) = run_sharded_bursts(cfg(None, None), &tasks);
            assert!(!golden.crashed);
            let golden_votes = votes(&golden_verdicts);
            let crash_points: Vec<Option<u64>> = golden
                .shards
                .iter()
                .map(|s| Some((s.journal.events().len() as u64 * 3 / 5).max(1)))
                .collect();

            let (crashed, pre_verdicts) =
                run_sharded_bursts(cfg(Some(dir.clone()), Some(crash_points)), &tasks);
            assert!(crashed.crashed, "{shards} shards: crash points must trip");

            let (runtime, client, reports) = ShardedRuntime::recover(
                cfg(Some(dir.clone()), None),
                Iterative::new(VoteMargin::new(MARGIN).unwrap()),
                |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
                &tasks,
            )
            .expect("parallel shard recovery");
            let post_verdicts = drain_sharded(&client);
            drop(client);
            let run = runtime.finish();
            assert!(!run.crashed);

            assert_eq!(reports.len(), shards);
            for (k, rec) in reports.iter().enumerate() {
                assert_eq!(
                    rec.report,
                    report_from_journal(&crashed.shards[k].journal),
                    "{shards} shards: shard {k} snapshot+suffix diverged \
                     from full replay"
                );
            }
            assert!(
                reports.iter().any(|r| r.checkpoint_events > 0),
                "{shards} shards: no shard exercised a checkpointed recovery"
            );
            assert_delivery(
                &format!("{shards} shards"),
                &pre_verdicts,
                &post_verdicts,
                &golden_votes,
                shards,
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    fn run_sharded_bursts(
        cfg: ShardedConfig,
        tasks: &[(u32, Payload)],
    ) -> (smartred_runtime::ShardedRun, Vec<TaskVerdict>) {
        let runtime = ShardedRuntime::start(
            cfg,
            Iterative::new(VoteMargin::new(MARGIN).unwrap()),
            |_| Box::new(FaultyWorker::new(SEED, chaos_profile())),
        );
        let client = runtime.client();
        let mut verdicts = Vec::new();
        for burst in tasks.chunks(tasks.len().div_ceil(3)) {
            for (_, payload) in burst {
                match client.submit(payload.clone()) {
                    SubmitOutcome::Shed => panic!("admission_cap admits the roster"),
                    SubmitOutcome::Accepted { .. } | SubmitOutcome::Queued { .. } => {}
                }
            }
            verdicts.extend(drain_sharded(&client));
            if runtime.is_crashed() {
                break;
            }
        }
        drop(client);
        (runtime.finish(), verdicts)
    }

    fn drain_sharded(client: &ShardedClient) -> Vec<TaskVerdict> {
        let mut verdicts = Vec::new();
        while let Some(v) = client.recv_timeout(Duration::from_millis(400)) {
            verdicts.push(v);
        }
        verdicts
    }
}

/// A disk fault *during* checkpointed operation is survivable: the fsync
/// failure crashes the coordinator mid-run, and recovery on a healthy
/// disk — snapshot or not — still converges with exactly-once delivery.
#[test]
fn disk_fault_during_a_checkpointed_run_recovers() {
    quiet_injected_panics();
    let tasks = roster(8);
    let (_, golden_verdicts) = run_roster(chaos_cfg(None), &tasks);
    let golden_votes = votes(&golden_verdicts);

    let wal = wal_path("ckpt-fault");
    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.checkpoint_every = Some(10);
    cfg.disk_faults = Some(DiskFaultPlan {
        seed: SEED ^ 7,
        fail_fsync_at: Some(100),
        ..DiskFaultPlan::default()
    });
    let runtime = start_chaos(cfg);
    let client = runtime.client();
    let mut pre_verdicts = Vec::new();
    for burst in tasks.chunks(3) {
        submit_all(&client, burst);
        pre_verdicts.extend(drain_verdicts(&client));
        if runtime.is_crashed() {
            break;
        }
    }
    drop(client);
    let crashed = runtime.finish();
    assert!(crashed.crashed, "the 100th fsync must kill the coordinator");

    let mut cfg = chaos_cfg(Some(wal.clone()));
    cfg.checkpoint_every = Some(10);
    let (run, post_verdicts, rec) = recover_chaos(cfg, &tasks);
    assert!(!run.crashed);
    assert_eq!(rec.report, report_from_journal(&crashed.journal));
    assert_delivery(
        "ckpt-fault",
        &pre_verdicts,
        &post_verdicts,
        &golden_votes,
        1,
    );
    cleanup(&wal);
}
