//! Property-based tests of the 3-SAT substrate: solver agreement,
//! decomposition soundness, and generator invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use smartred_sat::assignment::{decompose, Assignment};
use smartred_sat::gen::{random_3sat, ThreeSatConfig};
use smartred_sat::solve::{brute_force, count_satisfying, dpll};

proptest! {
    /// DPLL and brute force agree on satisfiability for random instances
    /// around the phase transition.
    #[test]
    fn dpll_agrees_with_brute_force(seed in 0u64..500, ratio in 2.0f64..6.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_3sat(
            ThreeSatConfig { num_vars: 10, clause_ratio: ratio },
            &mut rng,
        );
        let bf = brute_force(&f);
        let dp = dpll(&f);
        prop_assert_eq!(bf.is_some(), dp.is_some());
        if let Some(a) = dp {
            prop_assert!(f.eval(a), "DPLL returned a non-model");
        }
    }

    /// Any decomposition partitions the assignment space exactly.
    #[test]
    fn decompose_partitions_space(vars in 3u32..14, tasks in 1usize..200) {
        let space = 1u64 << vars;
        prop_assume!(tasks as u64 <= space);
        let blocks = decompose(vars, tasks);
        prop_assert_eq!(blocks.len(), tasks);
        let mut next = 0u64;
        for b in &blocks {
            prop_assert_eq!(b.start, next);
            prop_assert!(b.len >= space / tasks as u64);
            prop_assert!(b.len <= space / tasks as u64 + 1);
            next += b.len;
        }
        prop_assert_eq!(next, space);
    }

    /// The OR over block answers equals the solver's verdict, and the sum
    /// of per-block model counts equals the global model count.
    #[test]
    fn block_answers_aggregate_to_instance_answer(seed in 0u64..200, tasks in 1usize..60) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_3sat(
            ThreeSatConfig { num_vars: 9, clause_ratio: 4.26 },
            &mut rng,
        );
        let blocks = decompose(9, tasks);
        let any = blocks.iter().any(|b| b.contains_satisfying(&f));
        prop_assert_eq!(any, dpll(&f).is_some());
        let per_block: u64 = blocks
            .iter()
            .map(|b| b.assignments(9).filter(|&a| f.eval(a)).count() as u64)
            .sum();
        prop_assert_eq!(per_block, count_satisfying(&f));
    }

    /// Generated clauses always have three distinct variables in range.
    #[test]
    fn generator_invariants(seed in 0u64..300, vars in 3u32..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = random_3sat(
            ThreeSatConfig { num_vars: vars, clause_ratio: 4.0 },
            &mut rng,
        );
        for clause in f.clauses() {
            prop_assert_eq!(clause.literals().len(), 3);
            let mut vs: Vec<u32> = clause.literals().iter().map(|l| l.var.0).collect();
            vs.sort_unstable();
            vs.dedup();
            prop_assert_eq!(vs.len(), 3);
            prop_assert!(vs.iter().all(|&v| v < vars));
        }
    }

    /// Formula evaluation is consistent: flipping a variable that appears
    /// in no clause never changes the verdict.
    #[test]
    fn evaluation_ignores_unused_variables(seed in 0u64..100, bits in 0u64..256) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // 8 used variables + 1 guaranteed-unused (index 8 may appear; pick 9
        // variables and only generate over 8 by filtering instances).
        let f = random_3sat(
            ThreeSatConfig { num_vars: 8, clause_ratio: 4.0 },
            &mut rng,
        );
        let a = Assignment::from_bits(bits & 0xff, 8);
        // Deterministic double evaluation (purity check).
        prop_assert_eq!(f.eval(a), f.eval(a));
    }
}
