//! Random 3-SAT instance generation.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::cnf::{Clause, CnfFormula, Lit, Var};

/// Parameters of the uniform random 3-SAT model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeSatConfig {
    /// Number of variables (the paper uses 22).
    pub num_vars: u32,
    /// Clause-to-variable ratio; 4.26 is the classic satisfiability phase
    /// transition, giving hard instances of both polarities.
    pub clause_ratio: f64,
}

impl Default for ThreeSatConfig {
    fn default() -> Self {
        Self {
            num_vars: 22,
            clause_ratio: 4.26,
        }
    }
}

impl ThreeSatConfig {
    /// Number of clauses implied by the ratio (at least 1).
    pub fn num_clauses(&self) -> usize {
        ((self.num_vars as f64 * self.clause_ratio).round() as usize).max(1)
    }
}

/// Generates a uniform random 3-SAT instance: each clause picks three
/// distinct variables and negates each independently with probability ½.
///
/// # Panics
///
/// Panics if `config.num_vars < 3` (a 3-clause needs three distinct
/// variables) or exceeds 63.
///
/// # Examples
///
/// ```
/// use smartred_sat::gen::{random_3sat, ThreeSatConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let f = random_3sat(ThreeSatConfig::default(), &mut rng);
/// assert_eq!(f.num_vars(), 22);
/// assert_eq!(f.clauses().len(), 94); // round(22 × 4.26)
/// ```
pub fn random_3sat<R: Rng + ?Sized>(config: ThreeSatConfig, rng: &mut R) -> CnfFormula {
    assert!(
        (3..=63).contains(&config.num_vars),
        "3-SAT needs 3..=63 variables, got {}",
        config.num_vars
    );
    let vars: Vec<u32> = (0..config.num_vars).collect();
    let clauses = (0..config.num_clauses())
        .map(|_| {
            let chosen: Vec<u32> = vars.choose_multiple(rng, 3).copied().collect();
            Clause::new(
                chosen
                    .into_iter()
                    .map(|v| {
                        if rng.gen_bool(0.5) {
                            Lit::neg(Var(v))
                        } else {
                            Lit::pos(Var(v))
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    CnfFormula::new(config.num_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = ThreeSatConfig {
            num_vars: 10,
            clause_ratio: 4.0,
        };
        let f = random_3sat(cfg, &mut rng(1));
        assert_eq!(f.num_vars(), 10);
        assert_eq!(f.clauses().len(), 40);
        for clause in f.clauses() {
            assert_eq!(clause.literals().len(), 3);
            // Distinct variables within a clause.
            let mut vars: Vec<u32> = clause.literals().iter().map(|l| l.var.0).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = ThreeSatConfig::default();
        let a = random_3sat(cfg, &mut rng(42));
        let b = random_3sat(cfg, &mut rng(42));
        assert_eq!(a, b);
        let c = random_3sat(cfg, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn polarity_is_roughly_balanced() {
        let cfg = ThreeSatConfig {
            num_vars: 20,
            clause_ratio: 30.0,
        };
        let f = random_3sat(cfg, &mut rng(7));
        let total: usize = f.clauses().iter().map(|c| c.literals().len()).sum();
        let negated: usize = f
            .clauses()
            .iter()
            .flat_map(|c| c.literals())
            .filter(|l| l.negated)
            .count();
        let frac = negated as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "negated fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "3..=63 variables")]
    fn too_few_variables_panics() {
        random_3sat(
            ThreeSatConfig {
                num_vars: 2,
                clause_ratio: 4.0,
            },
            &mut rng(1),
        );
    }

    #[test]
    fn ratio_rounds_to_at_least_one_clause() {
        let cfg = ThreeSatConfig {
            num_vars: 5,
            clause_ratio: 0.01,
        };
        assert_eq!(cfg.num_clauses(), 1);
    }
}
