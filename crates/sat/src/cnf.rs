//! CNF formula representation.
//!
//! The paper's BOINC deployment "decomposes 3-SAT problems into individual
//! tasks that test whether particular Boolean assignments satisfy a Boolean
//! formula" (§4.1). This module provides the formula types; assignments and
//! block decomposition live in [`crate::assignment`].

use std::fmt;

use crate::assignment::Assignment;

/// A propositional variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the variable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// The underlying variable.
    pub var: Var,
    /// `true` if the literal is the negation of the variable.
    pub negated: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: Var) -> Self {
        Self {
            var,
            negated: false,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: Var) -> Self {
        Self { var, negated: true }
    }

    /// Evaluates the literal under `assignment`.
    pub fn eval(self, assignment: Assignment) -> bool {
        assignment.value(self.var) != self.negated
    }

    /// The literal of the same variable with opposite polarity.
    pub fn complement(self) -> Self {
        Self {
            var: self.var,
            negated: !self.negated,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬{}", self.var)
        } else {
            write!(f, "{}", self.var)
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    literals: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    ///
    /// # Panics
    ///
    /// Panics on an empty literal list — an empty clause is trivially
    /// unsatisfiable and never produced by the generator; constructing one
    /// is a logic error.
    pub fn new(literals: Vec<Lit>) -> Self {
        assert!(
            !literals.is_empty(),
            "clause must have at least one literal"
        );
        Self { literals }
    }

    /// The clause's literals.
    pub fn literals(&self) -> &[Lit] {
        &self.literals
    }

    /// Evaluates the clause under `assignment`.
    pub fn eval(&self, assignment: Assignment) -> bool {
        self.literals.iter().any(|l| l.eval(assignment))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
///
/// # Examples
///
/// ```
/// use smartred_sat::assignment::Assignment;
/// use smartred_sat::cnf::{Clause, CnfFormula, Lit, Var};
///
/// // (x0 ∨ ¬x1) ∧ (x1)
/// let f = CnfFormula::new(2, vec![
///     Clause::new(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]),
///     Clause::new(vec![Lit::pos(Var(1))]),
/// ]);
/// assert!(f.eval(Assignment::from_bits(0b11, 2)));  // x0 = x1 = true
/// assert!(!f.eval(Assignment::from_bits(0b10, 2))); // x0 false, x1 true → first clause fails
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates a formula.
    ///
    /// # Panics
    ///
    /// Panics if a clause references a variable `>= num_vars` or if
    /// `num_vars` exceeds 63 (assignments are stored as `u64` bitmasks; the
    /// paper's instances have 22 variables).
    pub fn new(num_vars: u32, clauses: Vec<Clause>) -> Self {
        assert!(num_vars <= 63, "at most 63 variables supported");
        for clause in &clauses {
            for lit in clause.literals() {
                assert!(
                    lit.var.0 < num_vars,
                    "literal {lit} references variable beyond num_vars={num_vars}"
                );
            }
        }
        Self { num_vars, clauses }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of assignments (`2^num_vars`).
    pub fn assignment_count(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Evaluates the formula under `assignment`.
    pub fn eval(&self, assignment: Assignment) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_formula() -> CnfFormula {
        // x0 ⊕ x1 = (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1)
        CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]),
                Clause::new(vec![Lit::neg(Var(0)), Lit::neg(Var(1))]),
            ],
        )
    }

    #[test]
    fn literal_evaluation() {
        let a = Assignment::from_bits(0b01, 2); // x0 = true, x1 = false
        assert!(Lit::pos(Var(0)).eval(a));
        assert!(!Lit::neg(Var(0)).eval(a));
        assert!(!Lit::pos(Var(1)).eval(a));
        assert!(Lit::neg(Var(1)).eval(a));
    }

    #[test]
    fn complement_flips_polarity() {
        let l = Lit::pos(Var(3));
        assert_eq!(l.complement(), Lit::neg(Var(3)));
        assert_eq!(l.complement().complement(), l);
    }

    #[test]
    fn xor_truth_table() {
        let f = xor_formula();
        assert!(!f.eval(Assignment::from_bits(0b00, 2)));
        assert!(f.eval(Assignment::from_bits(0b01, 2)));
        assert!(f.eval(Assignment::from_bits(0b10, 2)));
        assert!(!f.eval(Assignment::from_bits(0b11, 2)));
    }

    #[test]
    fn empty_formula_is_true() {
        let f = CnfFormula::new(1, vec![]);
        assert!(f.eval(Assignment::from_bits(0, 1)));
        assert_eq!(f.to_string(), "⊤");
    }

    #[test]
    #[should_panic(expected = "at least one literal")]
    fn empty_clause_panics() {
        Clause::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "beyond num_vars")]
    fn out_of_range_literal_panics() {
        CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(Var(5))])]);
    }

    #[test]
    fn display_renders_symbols() {
        let f = xor_formula();
        let s = f.to_string();
        assert!(s.contains('∨'));
        assert!(s.contains('∧'));
        assert!(s.contains("¬x0"));
    }

    #[test]
    fn assignment_count() {
        assert_eq!(xor_formula().assignment_count(), 4);
        let f = CnfFormula::new(22, vec![]);
        assert_eq!(f.assignment_count(), 1 << 22);
    }
}
