//! # smartred-sat — the 3-SAT workload substrate
//!
//! The paper's BOINC deployment solves 22-variable 3-SAT instances by
//! decomposing each into 140 tasks, where a task "tests whether particular
//! Boolean assignments satisfy a Boolean formula" (§4.1). This crate
//! rebuilds that workload:
//!
//! * [`cnf`] — variables, literals, clauses, CNF formulas;
//! * [`gen`] — seeded uniform random 3-SAT instances at a configurable
//!   clause ratio (4.26, the phase transition, by default);
//! * [`assignment`] — packed assignments and the contiguous block
//!   decomposition (`2²² assignments → 140 blocks`), where evaluating one
//!   block is exactly one volunteer job;
//! * [`solve`] — brute-force and DPLL reference solvers for ground truth.
//!
//! ## Example
//!
//! ```
//! use smartred_sat::assignment::decompose;
//! use smartred_sat::gen::{random_3sat, ThreeSatConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
//! let formula = random_3sat(ThreeSatConfig { num_vars: 16, clause_ratio: 4.26 }, &mut rng);
//! let blocks = decompose(formula.num_vars(), 140);
//!
//! // A volunteer job: does block 17 contain a satisfying assignment?
//! let _answer: bool = blocks[17].contains_satisfying(&formula);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod cnf;
pub mod gen;
pub mod solve;

pub use assignment::{decompose, Assignment, AssignmentBlock};
pub use cnf::{Clause, CnfFormula, Lit, Var};
pub use gen::{random_3sat, ThreeSatConfig};
