//! Assignments and the block decomposition that turns one SAT instance
//! into many independent tasks.
//!
//! The paper's deployment splits each 22-variable instance into 140 tasks
//! (§4.1); each task checks a contiguous block of the 2²² assignments and
//! answers "does this block contain a satisfying assignment?" — a binary
//! result, which is exactly the worst case the threat model assumes.

use crate::cnf::{CnfFormula, Var};

/// A complete truth assignment, packed as a bitmask (bit `i` is variable
/// `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    bits: u64,
    num_vars: u32,
}

impl Assignment {
    /// Creates an assignment from a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if bits beyond `num_vars` are set.
    pub fn from_bits(bits: u64, num_vars: u32) -> Self {
        assert!(num_vars <= 63);
        assert!(
            num_vars == 63 || bits < (1u64 << num_vars),
            "bits {bits:#b} exceed {num_vars} variables"
        );
        Self { bits, num_vars }
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of variables covered.
    pub fn num_vars(self) -> u32 {
        self.num_vars
    }

    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(self, var: Var) -> bool {
        assert!(var.0 < self.num_vars, "variable {var:?} out of range");
        (self.bits >> var.0) & 1 == 1
    }
}

/// A contiguous block of assignments `[start, start + len)`, the unit of
/// work one job evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssignmentBlock {
    /// First assignment bitmask in the block.
    pub start: u64,
    /// Number of assignments in the block.
    pub len: u64,
}

impl AssignmentBlock {
    /// Iterates the assignments of this block for a formula with
    /// `num_vars` variables.
    pub fn assignments(self, num_vars: u32) -> impl Iterator<Item = Assignment> {
        (self.start..self.start + self.len).map(move |bits| Assignment::from_bits(bits, num_vars))
    }

    /// Evaluates the block: `true` iff any assignment in it satisfies
    /// `formula`. This is the computation a volunteer job performs.
    pub fn contains_satisfying(self, formula: &CnfFormula) -> bool {
        self.assignments(formula.num_vars())
            .any(|a| formula.eval(a))
    }
}

/// Splits the full assignment space of a formula into `tasks` near-equal
/// contiguous blocks (the paper uses 140 tasks for 22 variables).
///
/// The first `2^n mod tasks` blocks are one assignment longer, so every
/// assignment is covered exactly once.
///
/// # Panics
///
/// Panics if `tasks` is zero or exceeds the number of assignments.
///
/// # Examples
///
/// ```
/// use smartred_sat::assignment::decompose;
///
/// let blocks = decompose(22, 140);
/// assert_eq!(blocks.len(), 140);
/// let total: u64 = blocks.iter().map(|b| b.len).sum();
/// assert_eq!(total, 1 << 22);
/// ```
pub fn decompose(num_vars: u32, tasks: usize) -> Vec<AssignmentBlock> {
    assert!(tasks > 0, "at least one task required");
    let space = 1u64 << num_vars;
    assert!(
        tasks as u64 <= space,
        "cannot split {space} assignments into {tasks} non-empty blocks"
    );
    let base = space / tasks as u64;
    let extra = space % tasks as u64;
    let mut blocks = Vec::with_capacity(tasks);
    let mut start = 0u64;
    for i in 0..tasks as u64 {
        let len = base + u64::from(i < extra);
        blocks.push(AssignmentBlock { start, len });
        start += len;
    }
    debug_assert_eq!(start, space);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};

    #[test]
    fn value_reads_bits() {
        let a = Assignment::from_bits(0b101, 3);
        assert!(a.value(Var(0)));
        assert!(!a.value(Var(1)));
        assert!(a.value(Var(2)));
        assert_eq!(a.bits(), 0b101);
        assert_eq!(a.num_vars(), 3);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn stray_bits_panic() {
        Assignment::from_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_panics() {
        Assignment::from_bits(0, 2).value(Var(2));
    }

    #[test]
    fn decompose_covers_space_exactly_once() {
        for &(vars, tasks) in &[(4u32, 3usize), (5, 7), (10, 140), (22, 140)] {
            let blocks = decompose(vars, tasks);
            assert_eq!(blocks.len(), tasks);
            let mut next = 0u64;
            for b in &blocks {
                assert_eq!(b.start, next, "gap before block at {}", b.start);
                assert!(b.len > 0);
                next = b.start + b.len;
            }
            assert_eq!(next, 1 << vars);
            // Block sizes differ by at most one.
            let min = blocks.iter().map(|b| b.len).min().unwrap();
            let max = blocks.iter().map(|b| b.len).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        decompose(4, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty blocks")]
    fn too_many_tasks_panics() {
        decompose(2, 5);
    }

    #[test]
    fn block_evaluation_finds_satisfying_assignment() {
        // Formula satisfied only by x0 = x1 = x2 = true (bits 0b111 = 7).
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(Var(0))]),
                Clause::new(vec![Lit::pos(Var(1))]),
                Clause::new(vec![Lit::pos(Var(2))]),
            ],
        );
        let blocks = decompose(3, 4); // blocks of 2
        assert!(!blocks[0].contains_satisfying(&f)); // 0..2
        assert!(!blocks[1].contains_satisfying(&f)); // 2..4
        assert!(!blocks[2].contains_satisfying(&f)); // 4..6
        assert!(blocks[3].contains_satisfying(&f)); // 6..8 contains 7
    }

    #[test]
    fn block_iterates_exactly_its_assignments() {
        let block = AssignmentBlock { start: 3, len: 4 };
        let bits: Vec<u64> = block.assignments(4).map(|a| a.bits()).collect();
        assert_eq!(bits, vec![3, 4, 5, 6]);
    }
}
