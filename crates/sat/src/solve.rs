//! Reference solvers used to establish ground truth for experiments.
//!
//! The volunteer-computing experiments need to know each block's true
//! answer to score verdicts. Instances are tiny by SAT standards (22
//! variables), so both an exhaustive scan and a DPLL search are provided;
//! tests cross-check them against each other.

use crate::assignment::Assignment;
use crate::cnf::{CnfFormula, Lit};

/// Exhaustively scans all assignments; returns the first satisfying one.
pub fn brute_force(formula: &CnfFormula) -> Option<Assignment> {
    let n = formula.num_vars();
    (0..formula.assignment_count())
        .map(|bits| Assignment::from_bits(bits, n))
        .find(|&a| formula.eval(a))
}

/// Counts satisfying assignments by exhaustive scan.
pub fn count_satisfying(formula: &CnfFormula) -> u64 {
    let n = formula.num_vars();
    (0..formula.assignment_count())
        .filter(|&bits| formula.eval(Assignment::from_bits(bits, n)))
        .count() as u64
}

/// DPLL with unit propagation and pure-literal elimination; returns a
/// satisfying assignment if one exists.
///
/// # Examples
///
/// ```
/// use smartred_sat::gen::{random_3sat, ThreeSatConfig};
/// use smartred_sat::solve::{brute_force, dpll};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let f = random_3sat(ThreeSatConfig { num_vars: 12, clause_ratio: 4.26 }, &mut rng);
/// assert_eq!(dpll(&f).is_some(), brute_force(&f).is_some());
/// ```
pub fn dpll(formula: &CnfFormula) -> Option<Assignment> {
    let clauses: Vec<Vec<Lit>> = formula
        .clauses()
        .iter()
        .map(|c| c.literals().to_vec())
        .collect();
    let mut assignment = vec![None; formula.num_vars() as usize];
    if search(&clauses, &mut assignment) {
        let mut bits = 0u64;
        for (i, v) in assignment.iter().enumerate() {
            if v.unwrap_or(false) {
                bits |= 1 << i;
            }
        }
        let found = Assignment::from_bits(bits, formula.num_vars());
        debug_assert!(formula.eval(found));
        Some(found)
    } else {
        None
    }
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Open,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0usize;
    for &lit in clause {
        match assignment[lit.var.index()] {
            Some(value) => {
                if value != lit.negated {
                    return ClauseState::Satisfied;
                }
            }
            None => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Open,
    }
}

fn search(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in clauses {
            match clause_state(clause, assignment) {
                ClauseState::Conflict => {
                    for var in trail {
                        assignment[var] = None;
                    }
                    return false;
                }
                ClauseState::Unit(lit) => {
                    assignment[lit.var.index()] = Some(!lit.negated);
                    trail.push(lit.var.index());
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }

    // Pure-literal elimination: a variable appearing with one polarity in
    // all unsatisfied clauses can be fixed to that polarity.
    let n = assignment.len();
    let mut appears_pos = vec![false; n];
    let mut appears_neg = vec![false; n];
    let mut any_open = false;
    for clause in clauses {
        if matches!(clause_state(clause, assignment), ClauseState::Satisfied) {
            continue;
        }
        any_open = true;
        for &lit in clause {
            if assignment[lit.var.index()].is_none() {
                if lit.negated {
                    appears_neg[lit.var.index()] = true;
                } else {
                    appears_pos[lit.var.index()] = true;
                }
            }
        }
    }
    if !any_open {
        return true; // every clause satisfied
    }
    for var in 0..n {
        if assignment[var].is_none() && (appears_pos[var] ^ appears_neg[var]) {
            assignment[var] = Some(appears_pos[var]);
            trail.push(var);
        }
    }

    // Branch on the first unassigned variable occurring in an open clause.
    let branch_var = clauses
        .iter()
        .filter(|c| !matches!(clause_state(c, assignment), ClauseState::Satisfied))
        .flat_map(|c| c.iter())
        .find(|lit| assignment[lit.var.index()].is_none())
        .map(|lit| lit.var.index());

    let result = match branch_var {
        None => {
            // No open clause has an unassigned literal: check for conflicts.
            !clauses
                .iter()
                .any(|c| matches!(clause_state(c, assignment), ClauseState::Conflict))
        }
        Some(var) => [true, false].into_iter().any(|value| {
            assignment[var] = Some(value);
            let ok = search(clauses, assignment);
            if !ok {
                assignment[var] = None;
            }
            ok
        }),
    };
    if !result {
        for var in trail {
            assignment[var] = None;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit, Var};
    use crate::gen::{random_3sat, ThreeSatConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn unsat_formula() -> CnfFormula {
        // (x0) ∧ (¬x0)
        CnfFormula::new(
            1,
            vec![
                Clause::new(vec![Lit::pos(Var(0))]),
                Clause::new(vec![Lit::neg(Var(0))]),
            ],
        )
    }

    #[test]
    fn brute_force_finds_unique_model() {
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(Var(0))]),
                Clause::new(vec![Lit::neg(Var(1))]),
            ],
        );
        let a = brute_force(&f).unwrap();
        assert_eq!(a.bits(), 0b01);
        assert_eq!(count_satisfying(&f), 1);
    }

    #[test]
    fn both_solvers_reject_unsat() {
        let f = unsat_formula();
        assert!(brute_force(&f).is_none());
        assert!(dpll(&f).is_none());
        assert_eq!(count_satisfying(&f), 0);
    }

    #[test]
    fn dpll_result_satisfies_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let f = random_3sat(
                ThreeSatConfig {
                    num_vars: 14,
                    clause_ratio: 4.26,
                },
                &mut rng,
            );
            if let Some(a) = dpll(&f) {
                assert!(f.eval(a), "DPLL returned a non-model");
            }
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut sat = 0;
        let mut unsat = 0;
        for _ in 0..40 {
            let f = random_3sat(
                ThreeSatConfig {
                    num_vars: 12,
                    clause_ratio: 4.26,
                },
                &mut rng,
            );
            let expected = brute_force(&f).is_some();
            assert_eq!(dpll(&f).is_some(), expected);
            if expected {
                sat += 1;
            } else {
                unsat += 1;
            }
        }
        // At the phase transition both outcomes should occur.
        assert!(sat > 0, "no satisfiable instances sampled");
        assert!(unsat > 0, "no unsatisfiable instances sampled");
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let f = CnfFormula::new(3, vec![]);
        assert!(brute_force(&f).is_some());
        assert!(dpll(&f).is_some());
        assert_eq!(count_satisfying(&f), 8);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): forces x0 = x1 = x2 = true.
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(Var(0))]),
                Clause::new(vec![Lit::neg(Var(0)), Lit::pos(Var(1))]),
                Clause::new(vec![Lit::neg(Var(1)), Lit::pos(Var(2))]),
            ],
        );
        let a = dpll(&f).unwrap();
        assert_eq!(a.bits(), 0b111);
    }
}
