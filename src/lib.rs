//! # smartred — smart redundancy for distributed computation
//!
//! A production-quality reproduction of *"Smart Redundancy for Distributed
//! Computation"* (Brun, Edwards, Bang, Medvidovic — ICDCS 2011). This
//! facade crate re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`core`] — the redundancy strategies (traditional, progressive,
//!   **iterative** — the paper's contribution) and their exact analysis;
//! * [`desim`] — the deterministic discrete-event engine (XDEVS stand-in);
//! * [`dca`] — the distributed-computation-architecture model of Fig. 1;
//! * [`sat`] — the 3-SAT workload substrate of the BOINC experiments;
//! * [`volunteer`] — the BOINC-like volunteer-computing system with
//!   PlanetLab-style host profiles, plus adversarial campaigns;
//! * [`runtime`] — the live wall-clock job-serving runtime (worker pool,
//!   admission control, journal-compatible observability);
//! * [`dag`] — network-charged DAG pipelines with per-stage redundancy
//!   and poison propagation from wrong accepted intermediates;
//! * [`stats`] — summary statistics and table rendering.
//!
//! ## Thirty-second tour
//!
//! ```
//! use smartred::core::analysis;
//! use smartred::core::params::{KVotes, Reliability, VoteMargin};
//!
//! let r = Reliability::new(0.7)?;
//!
//! // Traditional 19-vote redundancy: 19 jobs for ~0.967 reliability.
//! let k = KVotes::new(19)?;
//! let tr_cost = analysis::traditional::cost(k);
//! let tr_rel = analysis::traditional::reliability(k, r);
//!
//! // Iterative redundancy reaches the same reliability for ~9.35 jobs.
//! let d = VoteMargin::new(4)?;
//! let ir_cost = analysis::iterative::cost(d, r);
//! let ir_rel = analysis::iterative::reliability(d, r);
//!
//! assert!((tr_rel - ir_rel).abs() < 1e-3);
//! assert!(tr_cost / ir_cost > 2.0);
//! # Ok::<(), smartred::core::error::ParamError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use smartred_core as core;
pub use smartred_dag as dag;
pub use smartred_dca as dca;
pub use smartred_desim as desim;
pub use smartred_runtime as runtime;
pub use smartred_sat as sat;
pub use smartred_stats as stats;
pub use smartred_volunteer as volunteer;

// Convenience re-exports of the most common entry points.
pub use smartred_core::{
    Confidence, Decision, Iterative, KVotes, Progressive, RedundancyStrategy, Reliability,
    TaskExecution, Traditional, VoteMargin, VoteTally,
};
