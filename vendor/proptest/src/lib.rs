//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range/bool/`any`/`collection::vec` strategies, and the
//! `prop_assert*`/[`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (each sampled binding is formatted into the failure), but is
//!   not minimized.
//! * **Deterministic.** Cases derive from a per-test seed (FNV-1a of the
//!   test path) rather than OS entropy, so `cargo test` is reproducible.

#![forbid(unsafe_code)]

use rand_chacha::ChaCha8Rng;

/// The RNG driving strategy sampling.
pub type TestRng = ChaCha8Rng;

pub mod test_runner {
    //! Test-runner configuration and control-flow types.

    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    /// The name upstream exports in its prelude.
    pub use Config as ProptestConfig;

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Marker returned by [`crate::prop_assume!`] when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// FNV-1a hash of a test path — the per-test base seed.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The RNG for one case of one test.
    pub fn case_rng(base: u64, case: u64) -> super::TestRng {
        super::TestRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges.

    use super::TestRng;
    use rand::distributions::uniform::{SampleRange, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + Clone + std::fmt::Debug,
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform + Clone + std::fmt::Debug,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — the "natural" strategy per type.

    use super::strategy::AnyStrategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// The fair-coin strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range {r:?}");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test; the failure message names
/// the condition and any formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Rejects the current case (it does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flip in proptest::bool::ANY) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __base = $crate::test_runner::name_seed(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __attempts: u64 = 0;
                while __accepted < __config.cases {
                    assert!(
                        __attempts < u64::from(__config.cases) * 16 + 1024,
                        "prop_assume rejected too many cases ({} attempts)",
                        __attempts
                    );
                    let mut __rng = $crate::test_runner::case_rng(__base, __attempts);
                    __attempts += 1;
                    // The closure gives `prop_assume!` an early-return
                    // channel (`Err(Rejected)`) out of the case body.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $(let $p = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if __outcome.is_ok() {
                        __accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn assume_filters_cases(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(flip in crate::bool::ANY, v in crate::collection::vec(any::<bool>(), 3)) {
            prop_assert_eq!(v.len(), 3);
            let _ = flip;
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = crate::collection::vec(0u8..5, 2..9);
        let mut rng = crate::test_runner::case_rng(1, 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..=8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = crate::test_runner::case_rng(9, 3);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_runner::case_rng(9, 3);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x < 2, "x was {}", x);
            }
        }
        inner();
    }
}
