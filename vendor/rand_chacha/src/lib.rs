//! Offline vendored [`ChaCha8Rng`]: a faithful ChaCha stream cipher with 8
//! rounds, exposed through the vendored `rand` traits.
//!
//! This is a real ChaCha implementation (RFC 8439 block function, reduced
//! to 8 double-round-pairs like the upstream `rand_chacha::ChaCha8Rng`),
//! so its statistical quality matches the generator the workspace was
//! written against. Output streams are not byte-compatible with upstream —
//! all consumers in this workspace derive their own seeds, so internal
//! determinism is what matters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// ChaCha8 = 8 rounds = 4 column/diagonal double rounds.
const DOUBLE_ROUNDS: usize = 4;

/// A deterministic ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32) | u64::from(self.state[12]);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12–13) and nonce (14–15) start at zero; the first
        // `next_u32` call generates the first block lazily.
        Self {
            state,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32(); // leave the cursor mid-block
        }
        let mut b = a.clone();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bit_balance_is_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 10_000;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let frac = f64::from(ones) / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.005, "ones fraction {frac}");
    }

    #[test]
    fn uniform_f64_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn blocks_are_not_repeated() {
        // Consecutive blocks must differ (counter advances).
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
