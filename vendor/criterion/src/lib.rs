//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface this workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size` and
//! `throughput`), `Bencher::{iter, iter_batched}`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of upstream's statistical analysis, each benchmark is warmed
//! up briefly and then timed over a fixed wall-clock budget; the mean
//! iteration time (and derived throughput, when configured) is printed.
//! Good enough for relative comparisons in an offline container; not a
//! substitute for real criterion runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub use std::hint::black_box;

/// How much per-iteration setup data to batch in [`Bencher::iter_batched`].
///
/// The shim runs one setup per iteration regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; upstream batches many per allocation.
    SmallInput,
    /// Setup output is large; upstream batches few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing state handed to each benchmark closure.
pub struct Bencher {
    measure: Duration,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(measure: Duration) -> Self {
        Self {
            measure,
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        let deadline = Instant::now() + self.measure;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measure;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{name:<50} (no iterations)");
            return;
        }
        let per_iter = self.total / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        let mut line = format!(
            "{name:<50} {per_iter:>12.2?}/iter  ({} iters)",
            self.iterations
        );
        if let Some(tp) = throughput {
            let secs = per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", n as f64 / secs));
                }
            }
        }
        println!("{line}");
    }
}

/// The benchmark manager: entry point mirroring upstream `Criterion`.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.measure);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is wall-clock
    /// based, so the sample count does not change measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.measure);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(shim_smoke, tiny);

    #[test]
    fn group_runs() {
        // Keep the test fast: shrink the measurement budget.
        let mut c = Criterion {
            measure: Duration::from_millis(5),
        };
        tiny(&mut c);
        let _ = shim_smoke; // macro output compiles
    }
}
