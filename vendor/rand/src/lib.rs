//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the external `rand` dependency is replaced by this vendored shim. It
//! implements exactly the surface the workspace uses — [`Rng`]
//! (`gen`/`gen_range`/`gen_bool`), [`SeedableRng`], the [`distributions`]
//! and [`distributions::uniform`] traits, and
//! [`seq::SliceRandom::choose_multiple`] — with unbiased integer sampling
//! (Lemire's multiply-shift rejection) and 53-bit-precision floats.
//!
//! Output streams are *not* byte-compatible with upstream `rand`; every
//! consumer in this workspace seeds its own generators, so only internal
//! determinism and statistical quality matter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same expansion
    /// scheme `rand_core` uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut splitmix = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions: [`Standard`] and the [`uniform`] machinery.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution per type: full range for
    /// integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits scaled into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),+ $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )+};
    }

    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );

    pub mod uniform {
        //! Uniform sampling over ranges, mirroring `rand`'s
        //! `SampleUniform`/`SampleRange` split so generic call sites
        //! (`fn f<T: SampleUniform, R: SampleRange<T>>`) port unchanged.

        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Samples uniformly from `[low, high)` (`inclusive = false`)
            /// or `[low, high]` (`inclusive = true`).
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// Range types usable with [`super::super::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                T::sample_uniform(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range {low:?}..={high:?}");
                T::sample_uniform(rng, low, high, true)
            }
        }

        /// Unbiased `[0, span)` via Lemire's multiply-shift rejection.
        fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span; // (2^64 - span) mod span
            loop {
                let m = u128::from(rng.next_u64()) * u128::from(span);
                if m as u64 >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        // Offset arithmetic in u64 handles signed types too.
                        let span = (high as u64).wrapping_sub(low as u64);
                        let span = if inclusive { span.wrapping_add(1) } else { span };
                        if span == 0 {
                            // Inclusive over the full domain: any word works.
                            return rng.next_u64() as $t;
                        }
                        low.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
            )+};
        }

        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty => $unit:ident),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        assert!(low.is_finite() && high.is_finite(),
                            "cannot sample non-finite range [{low}, {high}]");
                        if low == high {
                            return low;
                        }
                        loop {
                            let u = $unit(rng);
                            let v = low + u * (high - low);
                            // FP rounding can land exactly on `high`; retry
                            // for half-open ranges (probability ~0).
                            if inclusive || v < high {
                                return v;
                            }
                        }
                    }
                }
            )+};
        }

        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }

        impl_uniform_float!(f64 => unit_f64, f32 => unit_f32);
    }
}

pub mod seq {
    //! Sequence sampling helpers.

    use super::distributions::uniform::SampleUniform;
    use super::{Rng, RngCore};

    /// Random sampling from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Chooses `amount` distinct elements uniformly without
        /// replacement, in random order. If `amount` exceeds the slice
        /// length, every element is returned once.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = usize::sample_uniform(rng, i, indices.len(), false);
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    /// Returns a uniformly random index below `len` (helper used by tests).
    pub fn index<R: Rng + ?Sized>(rng: &mut R, len: usize) -> usize {
        rng.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// A tiny xorshift for self-tests (the real workspace generator lives
    /// in the vendored `rand_chacha`).
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    impl SeedableRng for XorShift {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            XorShift(u64::from_le_bytes(seed).max(1))
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&f));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = XorShift::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn unit_floats_have_correct_mean() {
        let mut rng = XorShift::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = XorShift::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = XorShift::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn choose_multiple_is_distinct_and_in_range() {
        let mut rng = XorShift::seed_from_u64(11);
        let pool: Vec<u32> = (0..20).collect();
        for _ in 0..1_000 {
            let mut picked: Vec<u32> = pool.choose_multiple(&mut rng, 3).copied().collect();
            assert_eq!(picked.len(), 3);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 3, "choose_multiple repeated an element");
        }
        // Oversized requests return the whole slice.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 20);
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = XorShift::seed_from_u64(13);
        // Must not hang or panic on the span-overflow path.
        let _: u64 = u64::sample_uniform(&mut rng, 0, u64::MAX, true);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = XorShift::seed_from_u64(9);
        let mut b = XorShift::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
